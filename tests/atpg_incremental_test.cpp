// Incremental ATPG engine tests: SAT/simulation cross-checks, the
// seed-vs-incremental removal equivalence, cache behaviour, governed
// fault simulation, and the solver-call accounting fix.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/base/governor.hpp"
#include "src/base/rng.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"
#include "src/proof/verify.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

namespace fs = std::filesystem;

std::vector<Network> test_circuits() {
  std::vector<Network> nets;
  nets.push_back(carry_skip_adder(4, 2));
  nets.push_back(carry_skip_adder(8, 2));
  nets.push_back(ripple_carry_adder(4));
  for (std::uint64_t seed = 90; seed < 94; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 30;
    nets.push_back(random_network(opts));
  }
  for (Network& n : nets) decompose_to_simple(n);
  return nets;
}

std::vector<Network> example_circuits() {
  std::vector<Network> nets;
  for (const auto& entry : fs::directory_iterator(EXAMPLES_DIR)) {
    if (entry.path().extension() != ".blif") continue;
    std::ifstream in(entry.path());
    BlifSequential model = read_blif_sequential(in);
    decompose_to_simple(model.comb);
    nets.push_back(std::move(model.comb));
  }
  EXPECT_FALSE(nets.empty());
  return nets;
}

// Every SAT-testable fault's witness must be detected by the fault
// simulator — the exact cross-check the witness-dropping optimization
// rests on (a sim detection and a SAT model must agree on what
// "testable" means, cone encoding included).
TEST(AtpgIncrementalTest, SatWitnessIsDetectedBySimulator) {
  for (const Network& net : test_circuits()) {
    const auto faults = collapsed_faults(net);
    FaultSimulator sim(net);
    Atpg atpg(net);
    Rng rng(7);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const TestResult t = atpg.generate_test(faults[i]);
      if (t.outcome != TestOutcome::kTestable) continue;
      ASSERT_TRUE(t.vector.has_value());
      ASSERT_EQ(t.vector->size(), net.inputs().size());
      // Exact witness in every lane: the fault must be detected.
      std::vector<std::uint64_t> pi(net.inputs().size());
      for (std::size_t k = 0; k < pi.size(); ++k)
        pi[k] = (*t.vector)[k] ? ~0ull : 0ull;
      EXPECT_NE(sim.detect_words(faults, pi)[i], 0u)
          << "witness not detected for fault " << format_fault(net, faults[i]);
      // witness_words keeps the exact witness in pattern 0.
      const auto packed = witness_words(*t.vector, rng);
      EXPECT_NE(sim.detect_words(faults, packed)[i] & 1ull, 0u)
          << "witness_words lane 0 lost the witness for "
          << format_fault(net, faults[i]);
    }
  }
}

// ...and the other direction: every fault the random simulation detects
// must be SAT-testable. A sim detection of an untestable fault would
// mean the simulator and the encoder disagree on the fault semantics.
TEST(AtpgIncrementalTest, SimDetectedFaultIsSatTestable) {
  for (const Network& net : test_circuits()) {
    if (net.inputs().empty()) continue;
    const auto faults = collapsed_faults(net);
    FaultSimulator sim(net);
    Rng rng(11);
    const auto detected = sim.detect_random(faults, 4, rng);
    Atpg atpg(net);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!detected[i]) continue;
      EXPECT_EQ(atpg.generate_test(faults[i]).outcome, TestOutcome::kTestable)
          << "sim-detected but not SAT-testable: "
          << format_fault(net, faults[i]);
    }
  }
}

void expect_engines_agree(const Network& original) {
  Network seed_net = original.clone_compact();
  Network inc_net = original.clone_compact();
  RedundancyRemovalOptions seed_opts;
  seed_opts.incremental = false;
  RedundancyRemovalOptions inc_opts;
  inc_opts.incremental = true;
  const auto seed_r = remove_redundancies(seed_net, seed_opts);
  const auto inc_r = remove_redundancies(inc_net, inc_opts);
  EXPECT_EQ(seed_r.removed, inc_r.removed);
  EXPECT_LE(inc_r.sat_queries, seed_r.sat_queries);
  EXPECT_EQ(seed_net.check(), "");
  EXPECT_EQ(inc_net.check(), "");
  EXPECT_EQ(count_redundancies(inc_net), 0u);
  if (original.inputs().size() <= 16) {
    EXPECT_TRUE(exhaustive_equiv(original, seed_net).equivalent);
    EXPECT_TRUE(exhaustive_equiv(original, inc_net).equivalent);
  } else {
    Rng rng(23);
    EXPECT_TRUE(random_equiv(original, seed_net, rng).equivalent);
    EXPECT_TRUE(random_equiv(original, inc_net, rng).equivalent);
  }
}

TEST(AtpgIncrementalTest, EnginesAgreeOnGeneratedCircuits) {
  for (const Network& net : test_circuits()) expect_engines_agree(net);
}

TEST(AtpgIncrementalTest, EnginesAgreeOnExampleNetlists) {
  for (const Network& net : example_circuits()) expect_engines_agree(net);
}

TEST(AtpgIncrementalTest, IncrementalSavesQueriesOnCarrySkip) {
  Network net = carry_skip_adder(8, 2);
  decompose_to_simple(net);
  Network seed_net = net.clone_compact();
  Network inc_net = net.clone_compact();
  // Random-sim pre-drop off for both: the comparison measures the
  // exact-ATPG load the incremental machinery (witness dropping +
  // cross-pass cache) is responsible for, as bench_atpg --json does.
  RedundancyRemovalOptions seed_opts;
  seed_opts.incremental = false;
  seed_opts.use_fault_sim = false;
  RedundancyRemovalOptions inc_opts;
  inc_opts.incremental = true;
  inc_opts.use_fault_sim = false;
  const auto seed_r = remove_redundancies(seed_net, seed_opts);
  const auto inc_r = remove_redundancies(inc_net, inc_opts);
  ASSERT_GT(inc_r.removed, 0u);
  EXPECT_EQ(seed_r.removed, inc_r.removed);
  // The carry-skip adder needs several passes; the cross-pass cache and
  // witness dropping must both fire and must strictly reduce the exact
  // ATPG load.
  EXPECT_GT(inc_r.cache_hits, 0u);
  EXPECT_GT(inc_r.witness_dropped, 0u);
  EXPECT_LT(inc_r.sat_queries, seed_r.sat_queries);
  // Seed engine never uses the cache.
  EXPECT_EQ(seed_r.cache_hits, 0u);
  EXPECT_EQ(seed_r.witness_dropped, 0u);
}

TEST(AtpgIncrementalTest, GovernedDetectRandomReportsPartialResult) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(3);
  std::size_t words_done = 123;
  // Ungoverned: all requested words run.
  const auto full = sim.detect_random(faults, 4, rng, nullptr, &words_done);
  EXPECT_EQ(words_done, 4u);
  EXPECT_NE(std::count(full.begin(), full.end(), true), 0);
  // Exhausted governor: the simulation must stop before the first word
  // and report it, returning the (empty) partial detection set.
  ResourceGovernor gov;
  gov.request_interrupt();
  const auto part = sim.detect_random(faults, 4, rng, &gov, &words_done);
  EXPECT_EQ(words_done, 0u);
  EXPECT_EQ(std::count(part.begin(), part.end(), true), 0);
}

TEST(AtpgIncrementalTest, StructuralShortcutAccounting) {
  // A gate that reaches no primary output: untestable without a solver.
  Network net("dangling");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId dangling = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId o = net.add_gate(GateKind::kOr, {a, b}, 1.0);
  net.add_output("f", o);
  const Fault f{Fault::Site::kStem, dangling, ConnId::invalid(), false};
  {
    Atpg atpg(net);
    EXPECT_EQ(atpg.generate_test(f).outcome, TestOutcome::kUntestable);
    EXPECT_EQ(atpg.stats().queries, 1u);
    EXPECT_EQ(atpg.stats().sat_solves, 0u);
    EXPECT_EQ(atpg.stats().structural_shortcuts, 1u);
  }
  {
    // With a proof session the shortcut is bypassed so the verdict
    // carries a certificate; the accounting must say so.
    proof::ProofSession session;
    Atpg atpg(net, nullptr, &session);
    const TestResult t = atpg.generate_test(f);
    EXPECT_EQ(t.outcome, TestOutcome::kUntestable);
    EXPECT_GE(t.proof, 0);
    EXPECT_EQ(atpg.stats().sat_solves, 1u);
    EXPECT_EQ(atpg.stats().structural_shortcuts, 0u);
  }
  {
    // A testable fault reaches the solver: queries always split into
    // sat_solves + structural_shortcuts.
    Atpg atpg(net);
    const Fault live{Fault::Site::kStem, o, ConnId::invalid(), false};
    EXPECT_EQ(atpg.generate_test(live).outcome, TestOutcome::kTestable);
    EXPECT_EQ(atpg.generate_test(f).outcome, TestOutcome::kUntestable);
    EXPECT_EQ(atpg.stats().queries,
              atpg.stats().sat_solves + atpg.stats().structural_shortcuts);
  }
}

TEST(AtpgIncrementalTest, RemovalResultCountsActualSolves) {
  // The sat_queries accounting fix: the counter must equal the engine's
  // solver-call count, with structural shortcuts reported separately —
  // not the number of loop iterations that reached generate_test.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const auto r = remove_redundancies(net);
  EXPECT_EQ(r.sat_queries, r.atpg.sat_solves);
  EXPECT_EQ(r.structural_shortcuts, r.atpg.structural_shortcuts);
  EXPECT_EQ(r.static_discharged, r.atpg.static_discharged);
  EXPECT_EQ(r.atpg.queries, r.atpg.sat_solves + r.atpg.structural_shortcuts +
                                r.atpg.static_discharged);
}

TEST(AtpgIncrementalTest, WitnessDropsJournalledAndSessionVerifies) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const std::string input = write_blif_string(net);
  proof::ProofSession session;
  session.journal.set_model(net.name());
  session.journal.set_input_digest(proof::digest_bytes(input));
  RedundancyRemovalOptions opts;
  opts.incremental = true;
  opts.context.session = &session;
  const auto r = remove_redundancies(net, opts);
  ASSERT_GT(r.removed, 0u);
  const std::string output = write_blif_string(net);
  session.journal.set_output_digest(proof::digest_bytes(output));
  // Every removal cites an untestable proof; witness-dropped faults are
  // journalled as informational sim-testable steps, never as untestable.
  std::size_t deletes = 0, untestable = 0, sim_testable = 0;
  for (const auto& s : session.journal.steps()) {
    if (s.kind == proof::JournalStep::Kind::kDelete) ++deletes;
    if (s.kind == proof::JournalStep::Kind::kFaultUntestable) ++untestable;
    if (s.kind == proof::JournalStep::Kind::kFaultSimTestable) ++sim_testable;
  }
  EXPECT_EQ(deletes, r.removed);
  EXPECT_EQ(untestable, r.removed);
  EXPECT_EQ(sim_testable, r.witness_dropped);
  EXPECT_FALSE(session.journal.partial());
  // The independent checker accepts the journal, sim-testable steps
  // included, and verifies every deletion's certificate.
  const proof::VerifyReport rep =
      proof::verify_session(session, input, output);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.deletions_verified, r.removed);
  // Round-trip: the new step kind survives serialization.
  std::istringstream in(session.journal.to_text());
  const proof::TransformJournal parsed = proof::TransformJournal::read(in);
  EXPECT_EQ(parsed.steps().size(), session.journal.steps().size());
}

TEST(AtpgIncrementalTest, RemovalOrdersStillConvergeIncrementally) {
  // Any scan order must end fully testable and equivalent (the paper's
  // "in any order" claim) — with the cache and witness dropping active.
  for (const RemovalOrder order :
       {RemovalOrder::kForward, RemovalOrder::kReverse,
        RemovalOrder::kRandom}) {
    Network net = carry_skip_adder(4, 2);
    decompose_to_simple(net);
    Network orig = net.clone_compact();
    RedundancyRemovalOptions opts;
    opts.order = order;
    opts.incremental = true;
    remove_redundancies(net, opts);
    EXPECT_EQ(net.check(), "");
    EXPECT_EQ(count_redundancies(net), 0u);
    EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  }
}

}  // namespace
}  // namespace kms
