#include "src/netlist/network.hpp"

#include <gtest/gtest.h>

#include "src/netlist/gate.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

Network tiny_and_or() {
  // f = (a & b) | c
  Network net("tiny");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c = net.add_input("c");
  const GateId g1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "g1");
  const GateId g2 = net.add_gate(GateKind::kOr, {g1, c}, 1.0, "g2");
  net.add_output("f", g2);
  return net;
}

TEST(NetworkTest, BuildAndCheck) {
  Network net = tiny_and_or();
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.inputs().size(), 3u);
  EXPECT_EQ(net.outputs().size(), 1u);
  EXPECT_EQ(net.count_gates(), 2u);
  EXPECT_EQ(net.depth(), 2u);
}

TEST(NetworkTest, TopoOrderRespectsEdges) {
  Network net = tiny_and_or();
  const auto order = net.topo_order();
  std::vector<int> pos(net.gate_capacity(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[order[i].value()] = static_cast<int>(i);
  for (std::uint32_t c = 0; c < net.conn_capacity(); ++c) {
    const Conn& cn = net.conn(ConnId{c});
    if (cn.dead) continue;
    EXPECT_LT(pos[cn.from.value()], pos[cn.to.value()]);
  }
}

TEST(NetworkTest, GateKindProperties) {
  EXPECT_TRUE(has_controlling_value(GateKind::kAnd));
  EXPECT_FALSE(controlling_value(GateKind::kAnd));
  EXPECT_TRUE(controlling_value(GateKind::kOr));
  EXPECT_TRUE(controlling_value(GateKind::kNor));
  EXPECT_FALSE(controlling_value(GateKind::kNand));
  EXPECT_FALSE(has_controlling_value(GateKind::kXor));
  EXPECT_TRUE(is_simple(GateKind::kNot));
  EXPECT_FALSE(is_simple(GateKind::kMux));
  EXPECT_TRUE(is_inverting(GateKind::kNor));
  EXPECT_FALSE(is_inverting(GateKind::kOr));
}

TEST(NetworkTest, EvalGateTruthTables) {
  EXPECT_TRUE(eval_gate(GateKind::kAnd, 0b11, 2));
  EXPECT_FALSE(eval_gate(GateKind::kAnd, 0b01, 2));
  EXPECT_TRUE(eval_gate(GateKind::kNand, 0b01, 2));
  EXPECT_TRUE(eval_gate(GateKind::kOr, 0b10, 2));
  EXPECT_FALSE(eval_gate(GateKind::kNor, 0b10, 2));
  EXPECT_TRUE(eval_gate(GateKind::kXor, 0b01, 2));
  EXPECT_FALSE(eval_gate(GateKind::kXor, 0b11, 2));
  EXPECT_TRUE(eval_gate(GateKind::kXnor, 0b11, 2));
  // MUX fanins (s, a, b): s=1 selects a.
  EXPECT_TRUE(eval_gate(GateKind::kMux, 0b011, 3));   // s=1,a=1,b=0 -> 1
  EXPECT_FALSE(eval_gate(GateKind::kMux, 0b101, 3));  // s=1,a=0,b=1 -> 0
  EXPECT_TRUE(eval_gate(GateKind::kMux, 0b100, 3));   // s=0,a=0,b=1 -> 1
}

TEST(NetworkTest, RerouteSourcePreservesPin) {
  Network net = tiny_and_or();
  const GateId g2 = net.conn(net.gate(net.outputs()[0]).fanins[0]).from;
  const ConnId c0 = net.gate(g2).fanins[0];  // g1 -> g2
  const GateId a = net.inputs()[0];
  net.reroute_source(c0, a);
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.conn(c0).from, a);
  EXPECT_EQ(net.pin_of(c0), 0u);
}

TEST(NetworkTest, RemoveConnAndGate) {
  Network net = tiny_and_or();
  const GateId po = net.outputs()[0];
  const GateId g2 = net.conn(net.gate(po).fanins[0]).from;
  const ConnId and_to_or = net.gate(g2).fanins[0];
  const GateId g1 = net.conn(and_to_or).from;
  net.remove_conn(and_to_or);
  EXPECT_EQ(net.check(), "");
  net.remove_gate(g1);
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.count_gates(), 1u);
}

TEST(NetworkTest, DuplicateGateCopiesFaninsAndDelays) {
  Network net = tiny_and_or();
  const GateId po = net.outputs()[0];
  const GateId g2 = net.conn(net.gate(po).fanins[0]).from;
  const GateId g1 = net.conn(net.gate(g2).fanins[0]).from;
  net.conn(net.gate(g1).fanins[0]).delay = 0.5;
  const GateId dup = net.duplicate_gate(g1);
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.gate(dup).kind, GateKind::kAnd);
  EXPECT_EQ(net.gate(dup).delay, 1.0);
  ASSERT_EQ(net.gate(dup).fanins.size(), 2u);
  EXPECT_EQ(net.conn(net.gate(dup).fanins[0]).delay, 0.5);
  EXPECT_TRUE(net.gate(dup).fanouts.empty());
}

TEST(NetworkTest, ConvertToConstant) {
  Network net = tiny_and_or();
  const GateId po = net.outputs()[0];
  const GateId g2 = net.conn(net.gate(po).fanins[0]).from;
  const GateId g1 = net.conn(net.gate(g2).fanins[0]).from;
  net.convert_to_constant(g1, true);
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.gate(g1).kind, GateKind::kConst1);
  // f = 1 | c = 1 for all inputs.
  for (bool a : {false, true})
    for (bool b : {false, true})
      for (bool c : {false, true})
        EXPECT_TRUE(eval_once(net, {a, b, c})[0]);
}

TEST(NetworkTest, SweepRemovesDanglingCone) {
  Network net = tiny_and_or();
  const GateId a = net.inputs()[0];
  // A dangling NOT chain.
  const GateId n1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  net.add_gate(GateKind::kNot, {n1}, 1.0);
  EXPECT_EQ(net.count_gates(), 4u);
  EXPECT_EQ(net.sweep(), 2u);
  EXPECT_EQ(net.count_gates(), 2u);
  EXPECT_EQ(net.check(), "");
}

TEST(NetworkTest, SweepKeepsPrimaryInputs) {
  Network net = tiny_and_or();
  // Disconnect input c from the OR gate.
  const GateId po = net.outputs()[0];
  const GateId g2 = net.conn(net.gate(po).fanins[0]).from;
  net.remove_conn(net.gate(g2).fanins[1]);
  net.sweep();
  EXPECT_EQ(net.inputs().size(), 3u);
  EXPECT_FALSE(net.gate(net.inputs()[2]).dead);
}

TEST(NetworkTest, CloneCompactPreservesFunctionAndInterface) {
  Network net = tiny_and_or();
  // Create some tombstones first.
  const GateId a = net.inputs()[0];
  const GateId junk = net.add_gate(GateKind::kNot, {a}, 1.0);
  net.remove_gate(junk);
  Network copy = net.clone_compact();
  EXPECT_EQ(copy.check(), "");
  EXPECT_EQ(copy.inputs().size(), net.inputs().size());
  EXPECT_EQ(copy.outputs().size(), net.outputs().size());
  EXPECT_EQ(copy.gate(copy.inputs()[0]).name, "a");
  const auto eq = exhaustive_equiv(net, copy);
  EXPECT_TRUE(eq.equivalent);
}

TEST(NetworkTest, ConstGateIsShared) {
  Network net("c");
  const GateId c1 = net.const_gate(true);
  const GateId c2 = net.const_gate(true);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(net.const_gate(false), c1);
}

TEST(NetworkTest, MaxFanout) {
  Network net("f");
  const GateId a = net.add_input("a");
  const GateId n = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId x = net.add_gate(GateKind::kAnd, {n, n}, 1.0);
  const GateId y = net.add_gate(GateKind::kOr, {n, x}, 1.0);
  net.add_output("y", y);
  EXPECT_EQ(net.max_fanout(), 3u);  // n feeds x twice and y once
}

}  // namespace
}  // namespace kms
