#include "src/opt/opt.hpp"

#include <gtest/gtest.h>

#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(OptTest, StrashMergesIdenticalGates) {
  Network net("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId t1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId t2 = net.add_gate(GateKind::kAnd, {b, a}, 1.0);  // commuted
  const GateId o = net.add_gate(GateKind::kOr, {t1, t2}, 1.0);
  net.add_output("f", o);
  Network orig = net;
  EXPECT_GE(strash(net), 1u);
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  EXPECT_LE(net.count_gates(), 2u);
}

TEST(OptTest, StrashCancelsDoubleInverters) {
  Network net("i");
  const GateId a = net.add_input("a");
  const GateId n1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId n2 = net.add_gate(GateKind::kNot, {n1}, 1.0);
  const GateId g = net.add_gate(GateKind::kAnd, {n2, a}, 1.0);
  net.add_output("f", g);
  strash(net);
  EXPECT_EQ(net.count_gates(), 1u);  // just the AND on (a, a)
  EXPECT_TRUE(eval_once(net, {true})[0]);
  EXPECT_FALSE(eval_once(net, {false})[0]);
}

TEST(OptTest, StrashPreservesRandomCircuits) {
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 40;
    Network net = random_network(opts);
    Network orig = net;
    strash(net);
    EXPECT_EQ(net.check(), "") << seed;
    EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent) << seed;
    EXPECT_LE(net.count_gates(), orig.count_gates()) << seed;
  }
}

TEST(OptTest, BalanceReducesChainDepth) {
  // A long left-leaning AND chain balances to log depth.
  Network net("b");
  std::vector<GateId> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(net.add_input("x" + std::to_string(i)));
  GateId acc = ins[0];
  for (int i = 1; i < 8; ++i)
    acc = net.add_gate(GateKind::kAnd, {acc, ins[i]}, 1.0);
  net.add_output("f", acc);
  Network orig = net;
  const double before = topological_delay(net);
  EXPECT_GE(balance(net), 1u);
  EXPECT_EQ(net.check(), "");
  const double after = topological_delay(net);
  EXPECT_LT(after, before);
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
}

TEST(OptTest, BalanceRespectsArrivalTimes) {
  // The late input must end up near the root.
  Network net("l");
  const GateId late = net.add_input("late", 10.0);
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c = net.add_input("c");
  GateId acc = net.add_gate(GateKind::kAnd, {late, a}, 1.0);
  acc = net.add_gate(GateKind::kAnd, {acc, b}, 1.0);
  acc = net.add_gate(GateKind::kAnd, {acc, c}, 1.0);
  net.add_output("f", acc);
  balance(net);
  // Optimal: late joins last -> delay 11 (vs 13 unbalanced).
  EXPECT_DOUBLE_EQ(topological_delay(net), 11.0);
}

TEST(OptTest, ShannonSpeedupPreservesFunction) {
  for (std::uint64_t seed = 310; seed < 316; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 30;
    opts.allow_xor = false;
    Network net = random_network(opts);
    Network orig = net;
    const GateId pivot = net.inputs()[0];
    if (!shannon_speedup(net, 0, pivot)) continue;
    EXPECT_EQ(net.check(), "") << seed;
    EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent) << seed;
  }
}

TEST(OptTest, ShannonSpeedupReducesDelayForLateInput) {
  // Deep chain gated by the late input at the very bottom: cofactoring
  // against it moves it to the top, cutting its path to ~3 gates.
  Network net("sp");
  const GateId late = net.add_input("late", 10.0);
  std::vector<GateId> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(net.add_input("x" + std::to_string(i)));
  GateId acc = net.add_gate(GateKind::kAnd, {late, ins[0]}, 1.0);
  for (int i = 1; i < 6; ++i)
    acc = net.add_gate(GateKind::kOr, {net.add_gate(GateKind::kAnd,
                                                    {acc, ins[i]}, 1.0),
                                       ins[i - 1]},
                       1.0);
  net.add_output("f", acc);
  Network orig = net;
  const double before = topological_delay(net);
  ASSERT_TRUE(shannon_speedup(net, 0, late));
  const double after = topological_delay(net);
  EXPECT_LT(after, before);
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
}

TEST(OptTest, ShannonSpeedupCriticalAppliesToLateOutputs) {
  Network net("sc");
  const GateId late = net.add_input("late", 5.0);
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  GateId acc = net.add_gate(GateKind::kAnd, {late, a}, 1.0);
  acc = net.add_gate(GateKind::kOr, {acc, b}, 1.0);
  acc = net.add_gate(GateKind::kAnd, {acc, a}, 1.0);
  net.add_output("f", acc);
  Network orig = net;
  EXPECT_EQ(shannon_speedup_critical(net), 1u);
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
}

}  // namespace
}  // namespace kms
