// Property test for the invariant checker: random surgery sequences on
// seeded random networks must keep the checker free of error-severity
// findings after every single operation. This is the executable form of
// the claim that the Network surgery API cannot produce a structurally
// corrupt net — and cross-validates the rule-based checker against the
// older Network::check() string checker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.hpp"
#include "src/check/checker.hpp"
#include "src/check/diagnostics.hpp"
#include "src/check/hooks.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/network.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

/// Errors-only check after every op: warnings (orphan cones, idle
/// constants) are legitimate transient states between surgery and sweep.
void expect_clean(const Network& net, const std::string& context) {
  CheckOptions opts;
  opts.warnings = false;
  const Diagnostics diags = NetworkChecker(opts).run(net);
  ASSERT_EQ(diags.error_count(), 0u)
      << context << "\n"
      << diags.to_text();
  const std::string legacy = net.check();
  ASSERT_TRUE(legacy.empty()) << context << "\nlegacy check: " << legacy;
}

/// Live logic gates (excluding constants and IO markers).
std::vector<GateId> live_logic(const Network& net) {
  std::vector<GateId> out;
  for (std::uint32_t i = 0; i < net.gate_capacity(); ++i) {
    const GateId g{i};
    const Gate& gate = net.gate(g);
    if (!gate.dead && is_logic(gate.kind) && !is_constant(gate.kind))
      out.push_back(g);
  }
  return out;
}

std::vector<ConnId> live_conns(const Network& net) {
  std::vector<ConnId> out;
  for (std::uint32_t i = 0; i < net.conn_capacity(); ++i)
    if (!net.conn(ConnId{i}).dead) out.push_back(ConnId{i});
  return out;
}

/// Reroute a random connection to a random gate that is strictly earlier
/// in topological order than the sink — guaranteed not to close a cycle.
bool random_safe_reroute(Network& net, Rng& rng) {
  const std::vector<ConnId> conns = live_conns(net);
  if (conns.empty()) return false;
  const ConnId c = conns[rng.next_below(conns.size())];

  const std::vector<GateId> order = net.topo_order();
  std::vector<std::size_t> pos(net.gate_capacity(), 0);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[order[i].value()] = i;

  const GateId sink = net.conn(c).to;
  std::vector<GateId> candidates;
  for (const GateId g : order) {
    if (pos[g.value()] >= pos[sink.value()]) break;
    if (net.gate(g).kind == GateKind::kOutput) continue;
    candidates.push_back(g);
  }
  if (candidates.empty()) return false;
  net.reroute_source(c, candidates[rng.next_below(candidates.size())]);
  return true;
}

void run_surgery_storm(Network net, std::uint64_t seed, int ops) {
  Rng rng(seed);
  expect_clean(net, "initial network, seed " + std::to_string(seed));
  for (int step = 0; step < ops; ++step) {
    const std::string context =
        "seed " + std::to_string(seed) + ", step " + std::to_string(step);
    switch (rng.next_below(8)) {
      case 0: {  // duplicate a logic gate (the KMS duplication primitive)
        const std::vector<GateId> logic = live_logic(net);
        if (!logic.empty())
          net.duplicate_gate(logic[rng.next_below(logic.size())]);
        break;
      }
      case 1: {  // redirect a random pin to a constant
        const std::vector<ConnId> conns = live_conns(net);
        if (!conns.empty())
          net.set_conn_constant(conns[rng.next_below(conns.size())],
                                rng.next_bool());
        break;
      }
      case 2:  // acyclic-safe reroute
        random_safe_reroute(net, rng);
        break;
      case 3: {  // collapse a gate to a constant
        const std::vector<GateId> logic = live_logic(net);
        if (!logic.empty())
          net.convert_to_constant(logic[rng.next_below(logic.size())],
                                  rng.next_bool());
        break;
      }
      case 4:  // whole-network pass
        propagate_constants(net);
        break;
      case 5:
        collapse_buffers(net);
        break;
      case 6:
        net.sweep();
        break;
      case 7:
        if (net.outputs().size() > 1)
          net.remove_output(rng.next_below(net.outputs().size()));
        break;
    }
    expect_clean(net, context);
  }
  // After the final cleanup, the only acceptable findings are
  // warning-severity (e.g. primary inputs left unused by the storm).
  simplify(net);
  expect_clean(net, "post-simplify, seed " + std::to_string(seed));
  const Network compact = net.clone_compact();
  expect_clean(compact, "clone_compact, seed " + std::to_string(seed));
}

class CheckPropertyTest : public ::testing::Test {
 protected:
  // The storm deliberately passes through states (e.g. rerouting an
  // output marker's fanin) that are fine, but per-op hooks in a checking
  // build would double-run the checker; keep them — that is the point.
  // Nothing to disarm: every op here must keep the net clean.
};

TEST_F(CheckPropertyTest, RandomSurgeryKeepsCheckerClean) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    RandomNetworkOptions opts;
    opts.inputs = 6;
    opts.outputs = 3;
    opts.gates = 30;
    opts.seed = seed;
    run_surgery_storm(random_network(opts), seed, 60);
  }
}

TEST_F(CheckPropertyTest, RandomSurgeryOnSimpleGateNetworks) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    RandomNetworkOptions opts;
    opts.inputs = 5;
    opts.outputs = 2;
    opts.gates = 25;
    opts.seed = seed;
    Network net = random_network(opts);
    decompose_to_simple(net);
    expect_clean(net, "post-decompose, seed " + std::to_string(seed));
    run_surgery_storm(std::move(net), seed + 100, 50);
  }
}

TEST_F(CheckPropertyTest, FullCheckerAgreesWithLegacyOnRandomNets) {
  // Sweep many seeds cheaply: construction alone must be clean under the
  // full rule set including warnings (random_network wires every input
  // and keeps every cone reachable).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    const Network net = random_network(opts);
    const Diagnostics diags = NetworkChecker().run(net);
    EXPECT_EQ(diags.error_count(), 0u)
        << "seed " << seed << "\n"
        << diags.to_text();
    EXPECT_TRUE(net.check().empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace kms
