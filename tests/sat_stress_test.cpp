// Stress and corner-case tests for the CDCL solver beyond sat_test's
// basics: long incremental sessions, mixed clause widths, conflict-heavy
// instances that exercise clause-database reduction and restarts.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/sat/dpll.hpp"
#include "src/sat/solver.hpp"

namespace kms::sat {
namespace {

TEST(SatStressTest, ManyIncrementalAssumptionSolves) {
  // One solver, a thousand assumption queries; answers must match a
  // fresh solver per query.
  Rng rng(99);
  Solver persistent;
  const int nv = 40;
  std::vector<Var> vars;
  for (int i = 0; i < nv; ++i) vars.push_back(persistent.new_var());
  std::vector<std::vector<Lit>> cnf;
  for (int c = 0; c < 120; ++c) {
    std::vector<Lit> clause;
    const int width = 2 + static_cast<int>(rng.next_below(3));
    for (int k = 0; k < width; ++k)
      clause.push_back(mk_lit(vars[rng.next_below(nv)], rng.next_bool()));
    cnf.push_back(clause);
    persistent.add_clause(clause);
  }
  if (persistent.inconsistent()) GTEST_SKIP() << "root-level UNSAT";
  for (int round = 0; round < 1000; ++round) {
    std::vector<Lit> assumptions;
    const int n_assume = 1 + static_cast<int>(rng.next_below(5));
    for (int k = 0; k < n_assume; ++k)
      assumptions.push_back(
          mk_lit(vars[rng.next_below(nv)], rng.next_bool()));
    const Result inc = persistent.solve(assumptions);
    // Reference: fresh solver with the assumptions as unit clauses.
    Solver fresh;
    for (int i = 0; i < nv; ++i) fresh.new_var();
    bool consistent = true;
    for (const auto& clause : cnf)
      if (!fresh.add_clause(clause)) consistent = false;
    for (Lit a : assumptions)
      if (!fresh.add_clause(a)) consistent = false;
    const Result ref = consistent ? fresh.solve() : Result::kUnsat;
    ASSERT_EQ(inc == Result::kSat, ref == Result::kSat) << "round " << round;
  }
}

TEST(SatStressTest, MixedWidthRandomAgainstDpll) {
  for (std::uint64_t seed = 500; seed < 530; ++seed) {
    Rng rng(seed);
    const int nv = 14;
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    std::vector<std::vector<Lit>> cnf;
    bool root_unsat = false;
    const int nc = 40 + static_cast<int>(rng.next_below(40));
    for (int c = 0; c < nc; ++c) {
      std::vector<Lit> clause;
      const int width = 1 + static_cast<int>(rng.next_below(5));
      for (int k = 0; k < width; ++k)
        clause.push_back(mk_lit(vars[rng.next_below(nv)], rng.next_bool()));
      cnf.push_back(clause);
      if (!s.add_clause(clause)) root_unsat = true;
    }
    const bool expect = dpll_satisfiable(nv, cnf);
    if (root_unsat) {
      EXPECT_FALSE(expect) << seed;
      continue;
    }
    EXPECT_EQ(s.solve() == Result::kSat, expect) << "seed " << seed;
  }
}

TEST(SatStressTest, ConflictHeavyInstanceTriggersReductionAndRestarts) {
  // Pigeonhole 8/7: thousands of conflicts; exercises reduce_db, Luby
  // restarts and clause minimization under load.
  const int pigeons = 8, holes = 7;
  Solver s;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 500u);
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_GT(s.stats().learned, 100u);
}

TEST(SatStressTest, WideClauses) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 64; ++i) vars.push_back(s.new_var());
  // One wide clause plus units forcing all but one literal false.
  std::vector<Lit> wide;
  for (Var v : vars) wide.push_back(mk_lit(v));
  s.add_clause(wide);
  for (int i = 0; i < 63; ++i) s.add_clause(mk_lit(vars[i], true));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_bool(vars[63]));
}

TEST(SatStressTest, SolveAfterUnsatAssumptionsIsClean) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a), mk_lit(b));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.solve({mk_lit(a, true), mk_lit(b, true)}), Result::kUnsat);
    EXPECT_EQ(s.solve({mk_lit(a)}), Result::kSat);
  }
}

TEST(SatStressTest, UnitOnlyInstance) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 32; ++i) vars.push_back(s.new_var());
  for (int i = 0; i < 32; ++i) s.add_clause(mk_lit(vars[i], i % 2 == 0));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(s.model_bool(vars[i]), i % 2 != 0);
}

}  // namespace
}  // namespace kms::sat
