#include "src/atpg/atpg.hpp"

#include <gtest/gtest.h>

#include "src/atpg/inject.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

/// A generated test vector must actually expose the fault: simulating
/// the good and faulty machines on it must differ at some output.
void expect_test_detects(const Network& net, const Fault& f,
                         const std::vector<bool>& test) {
  Network faulty = inject_fault(net, f);
  EXPECT_NE(eval_once(net, test), eval_once(faulty, test))
      << format_fault(net, f);
}

TEST(AtpgTest, RippleAdderFullyTestable) {
  // "while a ripple-carry adder is fully testable ..." (Section III).
  Network net = ripple_carry_adder(3);
  decompose_to_simple(net);
  Atpg atpg(net);
  for (const Fault& f : collapsed_faults(net)) {
    const auto test = atpg.generate_test(f);
    ASSERT_TRUE(test.has_value()) << format_fault(net, f);
    expect_test_detects(net, f, *test);
  }
}

TEST(AtpgTest, CarrySkipAdderHasRedundancy) {
  // "... the carry-skip adder has a single redundancy in the circuit."
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  EXPECT_GE(count_redundancies(net), 1u);
}

TEST(AtpgTest, UnreachableGateFaultUntestable) {
  Network net("u");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  // A gate with no path to an output.
  const GateId dangling = net.add_gate(GateKind::kNot, {a}, 1.0);
  (void)dangling;
  Atpg atpg(net);
  // enumerate_faults skips gates without fanout, so craft one manually.
  const Fault f{Fault::Site::kStem, dangling, ConnId::invalid(), false};
  EXPECT_FALSE(atpg.is_testable(f));
}

TEST(AtpgTest, MaskedFaultIsUntestable) {
  // f = (a & b) | (a & b): the second copy's internal faults are
  // masked... build the classic redundant OR of identical terms.
  Network net("m");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId t1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "t1");
  const GateId t2 = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "t2");
  const GateId o = net.add_gate(GateKind::kOr, {t1, t2}, 1.0);
  net.add_output("f", o);
  Atpg atpg(net);
  // t2 stuck-at-0 never changes f (t1 still computes a&b).
  const Fault f{Fault::Site::kStem, t2, ConnId::invalid(), false};
  EXPECT_FALSE(atpg.is_testable(f));
  // But t2 stuck-at-1 is testable (a=0: f becomes 1 instead of 0).
  const Fault f1{Fault::Site::kStem, t2, ConnId::invalid(), true};
  const auto test = atpg.generate_test(f1);
  ASSERT_TRUE(test.has_value());
  expect_test_detects(net, f1, *test);
}

TEST(AtpgTest, BranchFaultDistinctFromStem) {
  // g1 fans out to both outputs; a branch fault affects only one.
  Network net("b");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "g1");
  const GateId o1 = net.add_gate(GateKind::kBuf, {g1}, 1.0);
  const GateId o2 = net.add_gate(GateKind::kBuf, {g1}, 1.0);
  net.add_output("f", o1);
  net.add_output("h", o2);
  Atpg atpg(net);
  const ConnId branch = net.gate(o1).fanins[0];
  const Fault f{Fault::Site::kBranch, GateId::invalid(), branch, false};
  const auto test = atpg.generate_test(f);
  ASSERT_TRUE(test.has_value());
  // The branch fault flips output f only.
  Network faulty = inject_fault(net, f);
  const auto good = eval_once(net, *test);
  const auto bad = eval_once(faulty, *test);
  EXPECT_NE(good[0], bad[0]);
  EXPECT_EQ(good[1], bad[1]);
}

TEST(AtpgTest, GeneratedTestsDetectOnRandomCircuits) {
  for (std::uint64_t seed = 60; seed < 66; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 30;
    Network net = random_network(opts);
    Atpg atpg(net);
    std::size_t testable = 0;
    for (const Fault& f : collapsed_faults(net)) {
      const auto test = atpg.generate_test(f);
      if (!test) continue;
      ++testable;
      expect_test_detects(net, f, *test);
    }
    EXPECT_GT(testable, 0u) << "seed " << seed;
  }
}

TEST(AtpgTest, UntestableMeansFunctionPreservedWhenAsserted) {
  // For every untestable fault found, asserting the stuck value must
  // leave the circuit function unchanged (the definition of redundancy).
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  Atpg atpg(net);
  std::size_t redundant = 0;
  for (const Fault& f : collapsed_faults(net)) {
    if (atpg.is_testable(f)) continue;
    ++redundant;
    Network faulty = inject_fault(net, f);
    EXPECT_TRUE(exhaustive_equiv(net, faulty).equivalent)
        << format_fault(net, f);
  }
  EXPECT_GE(redundant, 2u);  // one per block
}

}  // namespace
}  // namespace kms
