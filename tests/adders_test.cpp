#include "src/gen/adders.hpp"

#include <gtest/gtest.h>

#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(AddersTest, RippleInterface) {
  Network net = ripple_carry_adder(4);
  EXPECT_EQ(net.inputs().size(), 9u);   // a0..3, b0..3, cin
  EXPECT_EQ(net.outputs().size(), 5u);  // s0..3, cout
  EXPECT_EQ(net.check(), "");
}

TEST(AddersTest, CarrySkipBlocksSumToBits) {
  Network net = carry_skip_adder_blocks({3, 2, 3});
  EXPECT_EQ(net.inputs().size(), 17u);
  EXPECT_EQ(net.outputs().size(), 9u);
  EXPECT_EQ(net.check(), "");
}

TEST(AddersTest, CarrySkipNaming) {
  Network net = carry_skip_adder(8, 4);
  EXPECT_EQ(net.name(), "csa8.4");
}

TEST(AddersTest, UnevenTrailingBlock) {
  Network net = carry_skip_adder(7, 3);  // blocks 3,3,1
  Network rca = ripple_carry_adder(7);
  EXPECT_TRUE(exhaustive_equiv(net, rca).equivalent);
}

class AdderWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidths, CarrySkipAddsForAllBlockSizes) {
  const std::size_t bits = GetParam();
  Network rca = ripple_carry_adder(bits);
  for (std::size_t block = 1; block <= bits; ++block) {
    Network csa = carry_skip_adder(bits, block);
    EXPECT_TRUE(exhaustive_equiv(csa, rca).equivalent)
        << bits << "." << block;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths, ::testing::Values(2, 3, 4, 5));

TEST(AddersTest, SectionThreeDelays) {
  // Fig. 1 with c0 @ 5, AND/OR = 1, XOR/MUX = 2: carry cone critical
  // path 8, longest path 11 (checked in detail in paper_example_test;
  // here just the topological numbers).
  AdderOptions opts;
  opts.cin_arrival = 5.0;
  Network net = carry_skip_adder(2, 2, opts);
  Network cone = extract_output(net, net.outputs().size() - 1);
  EXPECT_DOUBLE_EQ(topological_delay(cone), 11.0);
  decompose_to_simple(cone);
  EXPECT_DOUBLE_EQ(topological_delay(cone), 11.0);
}

TEST(AddersTest, SkipChainShortensSensitizablePathsNotTopology) {
  // With unit delays the csa's topological delay matches the ripple
  // adder's (the ripple chain is still there) — the *skip* only helps
  // the true delay. This is exactly why naive STA needs the paper.
  Network rca = ripple_carry_adder(8);
  Network csa = carry_skip_adder(8, 4);
  decompose_to_simple(rca);
  decompose_to_simple(csa);
  apply_unit_delays(rca);
  apply_unit_delays(csa);
  EXPECT_GE(topological_delay(csa) + 1e-9, topological_delay(rca));
}

TEST(AddersTest, ApplyUnitDelaysZeroesConnections) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  apply_unit_delays(net);
  for (std::uint32_t i = 0; i < net.conn_capacity(); ++i)
    if (!net.conn(ConnId{i}).dead)
      EXPECT_DOUBLE_EQ(net.conn(ConnId{i}).delay, 0.0);
  for (std::uint32_t i = 0; i < net.gate_capacity(); ++i) {
    const Gate& g = net.gate(GateId{i});
    if (g.dead || !is_logic(g.kind) || is_constant(g.kind) ||
        g.kind == GateKind::kBuf)
      continue;
    EXPECT_DOUBLE_EQ(g.delay, 1.0);
  }
}

}  // namespace
}  // namespace kms
