#include "src/gen/suite.hpp"

#include <gtest/gtest.h>

#include "src/cnf/encoder.hpp"
#include "src/netlist/network.hpp"

namespace kms {
namespace {

TEST(SuiteTest, NineCircuitsWithTableOneShapes) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite_spec("s5xp1").inputs, 7u);
  EXPECT_EQ(suite_spec("s5xp1").outputs, 10u);
  EXPECT_EQ(suite_spec("sduke2").inputs, 22u);
  EXPECT_EQ(suite_spec("smisex2").inputs, 25u);
  EXPECT_THROW(suite_spec("nope"), std::out_of_range);
}

TEST(SuiteTest, BuildsAreDeterministic) {
  const SuiteSpec& spec = suite_spec("smisex1");
  Network a = build_suite_circuit(spec);
  Network b = build_suite_circuit(spec);
  EXPECT_EQ(a.count_gates(), b.count_gates());
  EXPECT_EQ(a.count_live_conns(), b.count_live_conns());
}

TEST(SuiteTest, InterfacesMatchSpecs) {
  for (const SuiteSpec& spec : benchmark_suite()) {
    Network net = build_suite_circuit(spec, /*delay_optimized=*/false);
    EXPECT_EQ(net.inputs().size(), spec.inputs) << spec.name;
    EXPECT_EQ(net.outputs().size(), spec.outputs) << spec.name;
    EXPECT_EQ(net.check(), "") << spec.name;
    EXPECT_GT(net.count_gates(), 10u) << spec.name;
  }
}

TEST(SuiteTest, DelayOptimizationPreservesFunction) {
  for (const SuiteSpec& spec : benchmark_suite()) {
    // Skip the widest circuits to keep the test fast; they are covered
    // by the benches.
    if (spec.inputs > 12) continue;
    Network base = build_suite_circuit(spec, /*delay_optimized=*/false);
    Network fast = build_suite_circuit(spec, /*delay_optimized=*/true);
    EXPECT_TRUE(sat_equivalent(base, fast)) << spec.name;
  }
}

}  // namespace
}  // namespace kms
