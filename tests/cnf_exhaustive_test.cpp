// Exhaustive truth-table cross-check of the CNF encoder against the
// logic simulator: for every gate kind and every fanin arity up to 6,
// every input assignment must produce the same output value through
// encode_gate()/CircuitEncoding as through sim's eval paths. The proof
// pipeline trusts the encoder (a DRAT certificate proves the *CNF*
// unsatisfiable, not the netlist claim — see DESIGN.md §10); this test
// is the evidence backing that trust.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/cnf/encoder.hpp"
#include "src/netlist/gate.hpp"
#include "src/netlist/network.hpp"
#include "src/sat/solver.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

using sat::mk_lit;
using sat::Solver;
using sat::Var;

struct KindArity {
  GateKind kind;
  std::uint32_t min_arity, max_arity;
};

const std::vector<KindArity>& variadic_kinds() {
  static const std::vector<KindArity> kinds = {
      {GateKind::kBuf, 1, 1},  {GateKind::kNot, 1, 1},
      {GateKind::kAnd, 1, 6}, {GateKind::kOr, 1, 6},
      {GateKind::kNand, 1, 6}, {GateKind::kNor, 1, 6},
      {GateKind::kXor, 1, 6}, {GateKind::kXnor, 1, 6},
      {GateKind::kMux, 3, 3},
  };
  return kinds;
}

std::string label(GateKind kind, std::uint32_t n) {
  return std::string(gate_kind_name(kind)) + "/" + std::to_string(n);
}

// encode_gate() against eval_gate(): the encoding must FORCE the output
// variable to the truth-table value in both polarities — SAT when the
// output is asserted to the expected value, UNSAT when asserted to its
// complement (so no encoding leaves the output underconstrained).
TEST(CnfExhaustiveTest, EncodeGateMatchesEvalGateAllArities) {
  for (const KindArity& ka : variadic_kinds()) {
    for (std::uint32_t n = ka.min_arity; n <= ka.max_arity; ++n) {
      Solver solver;
      std::vector<Var> in;
      std::vector<sat::Lit> in_lits;
      for (std::uint32_t i = 0; i < n; ++i) {
        in.push_back(solver.new_var());
        in_lits.push_back(mk_lit(in.back()));
      }
      const Var out = solver.new_var();
      encode_gate(solver, ka.kind, out, in_lits);
      for (std::uint32_t row = 0; row < (1u << n); ++row) {
        const bool expect = eval_gate(ka.kind, row, n);
        std::vector<sat::Lit> assume;
        for (std::uint32_t i = 0; i < n; ++i)
          assume.push_back(mk_lit(in[i], /*negated=*/((row >> i) & 1) == 0));
        assume.push_back(mk_lit(out, /*negated=*/!expect));
        EXPECT_EQ(solver.solve(assume), sat::Result::kSat)
            << label(ka.kind, n) << " row " << row
            << ": expected output value unsatisfiable";
        assume.back() = mk_lit(out, /*negated=*/expect);
        EXPECT_EQ(solver.solve(assume), sat::Result::kUnsat)
            << label(ka.kind, n) << " row " << row
            << ": complement output value satisfiable";
      }
    }
  }
}

// CircuitEncoding against eval_once() on single-gate cones: the
// network-level encoding (gate variables, constants, output markers)
// must agree with the simulator on every assignment.
TEST(CnfExhaustiveTest, CircuitEncodingMatchesSimulatorOnCones) {
  for (const KindArity& ka : variadic_kinds()) {
    for (std::uint32_t n = ka.min_arity; n <= ka.max_arity; ++n) {
      Network net("cone_" + label(ka.kind, n));
      std::vector<GateId> pis;
      for (std::uint32_t i = 0; i < n; ++i)
        pis.push_back(net.add_input("i" + std::to_string(i)));
      const GateId g = net.add_gate(ka.kind, pis);
      net.add_output("f", g);

      for (std::uint32_t row = 0; row < (1u << n); ++row) {
        std::vector<bool> pi_values(n);
        for (std::uint32_t i = 0; i < n; ++i) pi_values[i] = (row >> i) & 1;
        const std::vector<bool> simulated = eval_once(net, pi_values);
        ASSERT_EQ(simulated.size(), 1u);

        Solver solver;
        CircuitEncoding enc(net, solver);
        std::vector<sat::Lit> assume;
        for (std::uint32_t i = 0; i < n; ++i)
          assume.push_back(enc.lit_of(pis[i], /*negated=*/!pi_values[i]));
        ASSERT_EQ(solver.solve(assume), sat::Result::kSat)
            << label(ka.kind, n) << " row " << row;
        EXPECT_EQ(solver.model_bool(enc.var_of(g)), simulated[0])
            << label(ka.kind, n) << " row " << row;
        // And the value is forced, not merely preferred.
        assume.push_back(enc.lit_of(g, /*negated=*/simulated[0]));
        EXPECT_EQ(solver.solve(assume), sat::Result::kUnsat)
            << label(ka.kind, n) << " row " << row;
      }
    }
  }
}

// Constants inside a cone: AND/OR with one constant fanin must encode
// to the simulator's value for both polarities of the other input.
TEST(CnfExhaustiveTest, ConstantFaninsMatchSimulator) {
  for (const GateKind cst : {GateKind::kConst0, GateKind::kConst1}) {
    for (const GateKind kind : {GateKind::kAnd, GateKind::kOr,
                                GateKind::kXor, GateKind::kNand}) {
      Network net("const_cone");
      const GateId a = net.add_input("a");
      const GateId c = net.add_gate(cst, {});
      const GateId g = net.add_gate(kind, {a, c});
      net.add_output("f", g);
      for (const bool av : {false, true}) {
        const std::vector<bool> simulated = eval_once(net, {av});
        Solver solver;
        CircuitEncoding enc(net, solver);
        ASSERT_EQ(solver.solve({enc.lit_of(a, !av)}), sat::Result::kSat);
        EXPECT_EQ(solver.model_bool(enc.var_of(g)), simulated[0])
            << gate_kind_name(kind) << " with " << gate_kind_name(cst)
            << " a=" << av;
      }
    }
  }
}

}  // namespace
}  // namespace kms
