#include "src/atpg/testgen.hpp"

#include <gtest/gtest.h>

#include "src/atpg/fault_sim.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

TEST(TestGenTest, FullCoverageOnRippleAdder) {
  Network net = ripple_carry_adder(4);
  decompose_to_simple(net);
  const TestSet set = generate_test_set(net);
  EXPECT_EQ(set.redundant_faults, 0u);
  EXPECT_DOUBLE_EQ(set.coverage, 1.0);
  EXPECT_FALSE(set.vectors.empty());
  // Verify independently with the fault simulator.
  EXPECT_DOUBLE_EQ(
      fault_coverage(net, collapsed_faults(net), set.vectors), 1.0);
}

TEST(TestGenTest, ReportsRedundantFaults) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const TestSet set = generate_test_set(net);
  EXPECT_GE(set.redundant_faults, 2u);  // 2 per block before removal
  EXPECT_DOUBLE_EQ(set.coverage, 1.0);  // of the *testable* ones
}

TEST(TestGenTest, CompactionNeverLosesCoverage) {
  for (std::uint64_t seed = 400; seed < 406; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 30;
    Network net = random_network(opts);
    TestGenOptions with, without;
    with.compact = true;
    without.compact = false;
    const TestSet a = generate_test_set(net, with);
    const TestSet b = generate_test_set(net, without);
    EXPECT_DOUBLE_EQ(a.coverage, 1.0) << seed;
    EXPECT_DOUBLE_EQ(b.coverage, 1.0) << seed;
    EXPECT_LE(a.vectors.size(), b.vectors.size()) << seed;
  }
}

TEST(TestGenTest, KmsResultNeedsNoSpeedtestJustThisSet) {
  // The end-to-end story: KMS result + complete stuck-at test set.
  Network net = carry_skip_adder(6, 2);
  decompose_to_simple(net);
  apply_unit_delays(net);
  kms_make_irredundant(net, {});
  const TestSet set = generate_test_set(net);
  EXPECT_EQ(set.redundant_faults, 0u);
  EXPECT_DOUBLE_EQ(set.coverage, 1.0);
}

TEST(TestGenTest, DeterministicForSeed) {
  Network net = ripple_carry_adder(3);
  decompose_to_simple(net);
  const TestSet a = generate_test_set(net);
  const TestSet b = generate_test_set(net);
  EXPECT_EQ(a.vectors, b.vectors);
}

}  // namespace
}  // namespace kms
