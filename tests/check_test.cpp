// Targeted tests for the netlist invariant checker: each test corrupts a
// network in one specific way (through the public API and the mutable
// gate()/conn() accessors) and asserts that exactly the expected rule id
// fires, anchored to the offending gate or connection.
#include <gtest/gtest.h>

#include <string>

#include "src/check/checker.hpp"
#include "src/check/diagnostics.hpp"
#include "src/check/hooks.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/network.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

bool has_rule(const Diagnostics& diags, const std::string& rule) {
  for (const Diagnostic& d : diags.all())
    if (d.rule == rule) return true;
  return false;
}

Diagnostics run_checker(const Network& net, bool warnings = true) {
  CheckOptions opts;
  opts.warnings = warnings;
  return NetworkChecker(opts).run(net);
}

/// a, b -> g = a & b -> y. The minimal clean network most tests corrupt.
struct Rig {
  Network net{"rig"};
  GateId a, b, g, y;
  Rig() {
    a = net.add_input("a");
    b = net.add_input("b");
    g = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "g");
    y = net.add_output("y", g);
  }
};

/// Deliberate corruption must not trip the per-op self-check hooks in a
/// KMS_CHECK_INVARIANTS build; park them for the duration of each test.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { uninstall_invariant_self_checks(); }
  void TearDown() override { install_invariant_self_checks(); }
};

TEST_F(CheckTest, CleanNetworkHasNoFindings) {
  Rig r;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(diags.empty()) << diags.to_text();
}

TEST_F(CheckTest, CleanGeneratedAdderHasNoErrors) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const Diagnostics diags = run_checker(net);
  EXPECT_EQ(diags.error_count(), 0u) << diags.to_text();
}

TEST_F(CheckTest, NL001_CycleViaReroute) {
  Rig r;
  // g2 consumes g; rerouting g's pin-0 fanin to g2 closes the loop.
  const GateId g2 = r.net.add_gate(GateKind::kAnd, {r.g, r.b}, 1.0, "g2");
  r.net.reroute_source(r.net.gate(r.g).fanins[0], g2);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL001")) << diags.to_text();
  // The diagnostic names the gates on the cycle.
  bool named = false;
  for (const Diagnostic& d : diags.all())
    if (d.rule == "NL001" && d.message.find("'g2'") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << diags.to_text();
}

TEST_F(CheckTest, NL001_SelfLoop) {
  Rig r;
  r.net.conn(r.net.gate(r.g).fanins[0]).from = r.g;
  EXPECT_TRUE(has_rule(run_checker(r.net), "NL001"));
}

TEST_F(CheckTest, NL002_LiveConnTouchingDeadGate) {
  Rig r;
  r.net.gate(r.g).dead = true;  // conns a->g, b->g, g->y still live
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL002")) << diags.to_text();
}

TEST_F(CheckTest, NL003_ConnMissingFromSourceFanouts) {
  Rig r;
  r.net.gate(r.a).fanouts.clear();
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL003")) << diags.to_text();
  EXPECT_FALSE(has_rule(diags, "NL004"));
}

TEST_F(CheckTest, NL004_ConnMissingFromSinkFanins) {
  Rig r;
  const ConnId dropped = r.net.gate(r.g).fanins[1];
  r.net.gate(r.g).fanins.pop_back();
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL004")) << diags.to_text();
  bool anchored = false;
  for (const Diagnostic& d : diags.all())
    if (d.rule == "NL004" && d.conn == dropped) anchored = true;
  EXPECT_TRUE(anchored) << diags.to_text();
}

TEST_F(CheckTest, NL005_DeadAndOutOfRangeFanins) {
  Rig r;
  const ConnId c = r.net.gate(r.g).fanins[1];
  r.net.remove_conn(c);
  r.net.gate(r.g).fanins.push_back(c);             // dangling (dead) conn
  r.net.gate(r.g).fanins.push_back(ConnId{9999});  // out of range
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL005")) << diags.to_text();
}

TEST_F(CheckTest, NL006_StaleFanout) {
  Rig r;
  const ConnId c = r.net.gate(r.g).fanins[1];  // b -> g
  r.net.remove_conn(c);
  r.net.gate(r.b).fanouts.push_back(c);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL006")) << diags.to_text();
}

TEST_F(CheckTest, NL007_DuplicatePinEntry) {
  Rig r;
  r.net.gate(r.g).fanins.push_back(r.net.gate(r.g).fanins[0]);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL007")) << diags.to_text();
}

TEST_F(CheckTest, NL008_PinShapeViolations) {
  Rig r;
  const GateId empty_and = r.net.add_gate(GateKind::kAnd, {}, 1.0, "e");
  const GateId wide_not =
      r.net.add_gate(GateKind::kNot, {r.a, r.b}, 1.0, "w");
  (void)empty_and;
  (void)wide_not;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL008")) << diags.to_text();
}

TEST_F(CheckTest, NL009_OutputMarkerWithFanout) {
  Rig r;
  const GateId h = r.net.add_gate(GateKind::kAnd, {r.a}, 1.0, "h");
  r.net.connect(r.y, h);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL009")) << diags.to_text();
}

TEST_F(CheckTest, NL009_UnregisteredOutputMarker) {
  Rig r;
  const GateId h = r.net.add_gate(GateKind::kBuf, {r.g}, 0.0, "h");
  r.net.gate(h).kind = GateKind::kOutput;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL009")) << diags.to_text();
}

TEST_F(CheckTest, NL010_DeadRegisteredInput) {
  Rig r;
  // Kill b's conn first so the only finding family is the registry's.
  r.net.remove_conn(r.net.gate(r.b).fanouts[0]);
  r.net.gate(r.b).dead = true;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL010")) << diags.to_text();
}

TEST_F(CheckTest, NL011_DuplicateConstants) {
  Rig r;
  const GateId c1 = r.net.add_gate(GateKind::kAnd, {r.a}, 1.0);
  const GateId c2 = r.net.add_gate(GateKind::kAnd, {r.b}, 1.0);
  r.net.convert_to_constant(c1, false);
  r.net.convert_to_constant(c2, false);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL011")) << diags.to_text();
  EXPECT_EQ(diags.error_count(), 0u) << diags.to_text();  // warning only
}

TEST_F(CheckTest, NL012_NegativeDelays) {
  Rig r;
  r.net.gate(r.g).delay = -1.0;
  r.net.conn(r.net.gate(r.g).fanins[0]).delay = -0.5;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL012")) << diags.to_text();
  EXPECT_EQ(diags.error_count(), 2u) << diags.to_text();
}

TEST_F(CheckTest, NL013_OrphanConeIsWarning) {
  Rig r;
  const GateId o = r.net.add_gate(GateKind::kAnd, {r.a, r.b}, 1.0, "orphan");
  (void)o;
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL013")) << diags.to_text();
  EXPECT_EQ(diags.error_count(), 0u) << diags.to_text();
}

TEST_F(CheckTest, NL014_InterfaceNameCollision) {
  Rig r;
  r.net.add_input("a");  // second PI named "a"
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL014")) << diags.to_text();
}

TEST_F(CheckTest, NL015_UnusedPrimaryInput) {
  Rig r;
  r.net.add_input("idle");
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL015")) << diags.to_text();
  EXPECT_EQ(diags.error_count(), 0u);
}

TEST_F(CheckTest, NL016_ConstantDrivenGateSurvivesSweep) {
  Rig r;
  // Reroute g's pin-1 fanin to a constant: constant propagation should
  // have folded g, so the surviving constant-driven gate is flagged.
  const GateId one = r.net.add_gate(GateKind::kConst1, {}, 0.0, "one");
  r.net.reroute_source(r.net.gate(r.g).fanins[1], one);
  const Diagnostics diags = run_checker(r.net);
  EXPECT_TRUE(has_rule(diags, "NL016")) << diags.to_text();
  EXPECT_EQ(diags.error_count(), 0u);  // a warning, not an error

  // Warnings off (the enforce_invariants configuration): silent.
  EXPECT_FALSE(has_rule(run_checker(r.net, /*warnings=*/false), "NL016"));
  EXPECT_NO_THROW(enforce_invariants(r.net, "test"));
}

TEST_F(CheckTest, NL016_SilentOnConstantFeedingOnlyOutputs) {
  // A constant driving a primary output directly is legitimate (sweep
  // keeps it): NL016 targets *logic* gates with constant fanins.
  Network net("const_po");
  const GateId zero = net.add_gate(GateKind::kConst0, {}, 0.0, "zero");
  net.add_output("f", zero);
  EXPECT_FALSE(has_rule(run_checker(net), "NL016"));
}

TEST_F(CheckTest, WarningRulesCanBeDisabled) {
  Rig r;
  r.net.add_input("idle");
  r.net.add_gate(GateKind::kAnd, {r.a}, 1.0, "orphan");
  EXPECT_TRUE(run_checker(r.net, /*warnings=*/false).empty());
}

TEST_F(CheckTest, DiagnosticCapMarksTruncation) {
  Rig r;
  for (int i = 0; i < 10; ++i)
    r.net.gate(r.g).fanins.push_back(ConnId{9000 + i});
  CheckOptions opts;
  opts.max_diagnostics = 3;
  const Diagnostics diags = NetworkChecker(opts).run(r.net);
  EXPECT_EQ(diags.all().size(), 3u);
  EXPECT_TRUE(diags.truncated());
}

TEST_F(CheckTest, EnforceInvariantsThrowsOnErrorsOnly) {
  Rig clean;
  EXPECT_NO_THROW(enforce_invariants(clean.net, "test"));

  Rig warn;
  warn.net.add_input("idle");  // NL015, warning
  EXPECT_NO_THROW(enforce_invariants(warn.net, "test"));

  Rig bad;
  bad.net.gate(bad.g).delay = -1.0;
  try {
    enforce_invariants(bad.net, "unit-test-phase");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit-test-phase"), std::string::npos) << what;
    EXPECT_NE(what.find("NL012"), std::string::npos) << what;
  }
}

TEST_F(CheckTest, JsonEmitterIsStructured) {
  Rig r;
  r.net.gate(r.g).delay = -1.0;
  const Diagnostics diags = run_checker(r.net);
  const std::string json = diags.to_json();
  EXPECT_NE(json.find("\"rule\":\"NL012\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gate\":" + std::to_string(r.g.value())),
            std::string::npos)
      << json;
}

TEST_F(CheckTest, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST_F(CheckTest, RuleTableIsWellFormed) {
  const auto& rules = all_rules();
  EXPECT_GE(rules.size(), 15u);
  for (const RuleInfo& r : rules) {
    EXPECT_EQ(find_rule(r.id), &r);
    EXPECT_NE(r.summary, nullptr);
  }
  EXPECT_EQ(find_rule("NL999"), nullptr);
}

// ---- self-check hook plumbing ----------------------------------------------

int g_hook_calls = 0;
void counting_hook(const Network&, const char*) { ++g_hook_calls; }

TEST_F(CheckTest, TransformPassesSelfCheckInAnyBuild) {
  Rig r;
  Network::set_self_check_hook(&counting_hook);
  g_hook_calls = 0;
  propagate_constants(r.net);
  collapse_buffers(r.net);
  decompose_to_simple(r.net);
  EXPECT_GE(g_hook_calls, 3);
  Network::set_self_check_hook(nullptr);
}

#ifdef KMS_CHECK_INVARIANTS
TEST_F(CheckTest, SurgeryOpsSelfCheckWhenCompiledIn) {
  Rig r;
  Network::set_self_check_hook(&counting_hook);
  g_hook_calls = 0;
  const GateId dup = r.net.duplicate_gate(r.g);
  (void)dup;
  r.net.sweep();
  EXPECT_GE(g_hook_calls, 2);
  Network::set_self_check_hook(nullptr);
}

TEST_F(CheckTest, CorruptingRerouteThrowsUnderArmedHooks) {
  if (!invariant_checks_enabled()) GTEST_SKIP();
  Rig r;
  const GateId g2 = r.net.add_gate(GateKind::kAnd, {r.g, r.b}, 1.0, "g2");
  install_invariant_self_checks();
  EXPECT_THROW(r.net.reroute_source(r.net.gate(r.g).fanins[0], g2),
               CheckFailure);
}
#endif

}  // namespace
}  // namespace kms
