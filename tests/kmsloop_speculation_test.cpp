// Speculative parallel path sensitization (src/core/speculate.hpp):
// the determinism suite. End states, journals and proof artifacts must
// be byte-identical with speculation on or off at any width and any
// worker count; a governor trip mid-batch must degrade exactly as
// conservatively as the serial engine; speculative solves must never
// journal; and the real-binary pipeline (kmscli --speculate-k,
// kmsproof) must produce auditable artifacts whose journal bytes match
// the serial run's.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/governor.hpp"
#include "src/check/checker.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"
#include "src/proof/verify.hpp"
#include "src/sim/simulator.hpp"

#ifndef KMSCLI_PATH
#error "KMSCLI_PATH must be defined by the build"
#endif
#ifndef KMSPROOF_PATH
#error "KMSPROOF_PATH must be defined by the build"
#endif

namespace kms {
namespace {

bool equivalent(const Network& a, const Network& b) {
  if (a.inputs().size() <= 14) return exhaustive_equiv(a, b).equivalent;
  return sat_equivalent(a, b);
}

/// One full KMS run; returns (output blif, journal text, stats, certs).
struct RunOutcome {
  std::string blif;
  std::string journal;
  KmsStats stats;
  std::size_t certificates = 0;
};

RunOutcome run_kms(Network net, std::size_t speculate_k, unsigned jobs,
                   ResourceGovernor* gov = nullptr) {
  proof::ProofSession session;
  session.journal.set_model(net.name());
  session.journal.set_input_digest(proof::digest_bytes(write_blif_string(net)));
  KmsOptions opts;
  opts.speculate_k = speculate_k;
  opts.context.jobs = jobs;
  opts.context.session = &session;
  opts.context.governor = gov;
  RunOutcome out;
  out.stats = kms_make_irredundant(net, opts);
  out.blif = write_blif_string(net);
  session.journal.set_output_digest(proof::digest_bytes(out.blif));
  out.journal = session.journal.to_text();
  out.certificates = session.certificates().size();
  return out;
}

// The acceptance property: width 1/4/16 crossed with jobs 1/4 — same
// final netlist bytes, same journal bytes, same certificate count, same
// delay doubles, and never more *committed* queries than the serial
// engine (cache hits replace solves). The corpus spans both regimes:
// single-component adders (the candidate filter disables speculation)
// and a replicated multi-block datapath (batches and cache hits fire).
TEST(KmsloopSpeculationTest, ByteIdenticalAcrossWidthsAndJobs) {
  for (Network seed_net : {carry_skip_adder(4, 2), carry_skip_adder(6, 3),
                           replicate_blocks(carry_skip_adder(4, 2), 3)}) {
    decompose_to_simple(seed_net);
    const RunOutcome ref = run_kms(seed_net, /*speculate_k=*/1, /*jobs=*/1);
    EXPECT_EQ(ref.stats.spec_batches, 0u);  // width 1 never batches
    for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      for (unsigned jobs : {1u, 4u}) {
        const RunOutcome spec = run_kms(seed_net, k, jobs);
        EXPECT_EQ(spec.blif, ref.blif)
            << seed_net.name() << " k=" << k << " jobs=" << jobs;
        EXPECT_EQ(spec.journal, ref.journal)
            << seed_net.name() << " k=" << k << " jobs=" << jobs;
        EXPECT_EQ(spec.certificates, ref.certificates);
        EXPECT_EQ(spec.stats.iterations, ref.stats.iterations);
        EXPECT_EQ(spec.stats.loop_exit, ref.stats.loop_exit);
        EXPECT_EQ(spec.stats.final_topo_delay, ref.stats.final_topo_delay);
        EXPECT_EQ(spec.stats.final_computed_delay,
                  ref.stats.final_computed_delay);
        EXPECT_LE(spec.stats.sensitization_queries,
                  ref.stats.sensitization_queries)
            << "speculation committed more queries than the serial engine";
      }
    }
  }
}

// Speculative work happens and is visible in the stats — and because
// the journals above are byte-identical, those extra solves provably
// never journalled. A multi-block circuit is required: the candidate
// filter only speculates across independent connected components, so on
// a single-cone adder spec_batches is (correctly) zero.
TEST(KmsloopSpeculationTest, SpeculativeSolvesAreAccountedNotJournalled) {
  Network net = replicate_blocks(carry_skip_adder(4, 2), 4);
  decompose_to_simple(net);
  const RunOutcome ref = run_kms(net, 1, 1);
  const RunOutcome spec = run_kms(net, 16, 4);
  ASSERT_GT(spec.stats.iterations, 1u);
  EXPECT_GT(spec.stats.spec_batches, 0u);
  EXPECT_GT(spec.stats.spec_solves, 0u);
  EXPECT_GT(spec.stats.spec_cache_hits, 0u)
      << "banked cross-component verdicts should be spent on later "
         "iterations of a replicated datapath";
  EXPECT_LE(spec.stats.spec_cache_hits + spec.stats.spec_cache_invalidated,
            spec.stats.spec_cache_insertions)
      << "a verdict can only be spent or invalidated after being banked";
  EXPECT_EQ(spec.journal, ref.journal);
}

// A governor that trips before the loop starts: both engines exit with
// loop_exit == "governor" and identical output bytes.
TEST(KmsloopSpeculationTest, PreTrippedGovernorExitsIdentically) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  RunOutcome runs[2];
  for (int i = 0; i < 2; ++i) {
    ResourceGovernor gov;
    gov.request_interrupt();
    runs[i] = run_kms(net, i == 0 ? 1 : 8, i == 0 ? 1 : 4, &gov);
    EXPECT_EQ(runs[i].stats.loop_exit, "governor");
    EXPECT_EQ(runs[i].stats.iterations, 0u);
    EXPECT_TRUE(runs[i].stats.degraded);
  }
  EXPECT_EQ(runs[0].blif, runs[1].blif);
  EXPECT_EQ(runs[0].journal, runs[1].journal);
}

// A governor tripping mid-batch (speculative solves share the budget):
// degradation must stay exactly as conservative as serial — checker
// clean, functionally equivalent, degraded flagged.
TEST(KmsloopSpeculationTest, MidBatchTripDegradesConservatively) {
  Network net = replicate_blocks(carry_skip_adder(4, 2), 3);
  const Network original = net;
  ResourceGovernor gov;
  gov.set_injector(
      FaultInjector::random(/*seed=*/7, /*abort_probability=*/0.0,
                            /*cancel_after_queries=*/5));
  KmsOptions opts;
  opts.speculate_k = 8;
  opts.context.jobs = 4;
  opts.context.governor = &gov;
  const KmsStats stats = kms_make_irredundant(net, opts);
  EXPECT_TRUE(stats.interrupted);
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(NetworkChecker().run(net).error_count(), 0u);
  EXPECT_TRUE(equivalent(original, net));
}

// An aborted authoritative verdict (every solve forced kUnknown) exits
// the loop with the new reason recorded and `degraded` set — the
// satellite-1 fix: before loop_exit existed this was indistinguishable
// from the natural kSat exit.
TEST(KmsloopSpeculationTest, UnknownExitIsRecordedAndDegraded) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  ResourceGovernor gov;
  gov.set_injector(
      FaultInjector::random(/*seed=*/1, /*abort_probability=*/1.0));
  KmsOptions opts;
  opts.context.governor = &gov;
  opts.remove_remaining = false;
  const KmsStats stats = kms_make_irredundant(net, opts);
  EXPECT_EQ(stats.loop_exit, "unknown");
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(KmsloopSpeculationTest, LoopExitReasonsCoverTheNaturalCases) {
  {
    Network net = carry_skip_adder(4, 2);
    const KmsStats stats = kms_make_irredundant(net);
    EXPECT_TRUE(stats.loop_exit == "sat" || stats.loop_exit == "no-paths")
        << stats.loop_exit;
    EXPECT_FALSE(stats.degraded);
  }
  {
    Network net = carry_skip_adder(4, 2);
    KmsOptions opts;
    opts.max_iterations = 0;
    const KmsStats stats = kms_make_irredundant(net, opts);
    EXPECT_EQ(stats.loop_exit, "iteration-cap");
    EXPECT_TRUE(stats.iteration_cap_hit);
  }
}

// ---- Real-binary pipeline ------------------------------------------------

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name + "." +
         std::to_string(getpid());
}

int exit_code(const std::string& cmd) {
  const int raw = std::system((cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_cert_files(const std::string& dir) {
  std::size_t n = 0;
  while (true) {
    std::ifstream in(dir + "/cert_" + std::to_string(n) + ".drat");
    if (!in) return n;
    ++n;
  }
}

// kmscli irr --speculate-k 16 --jobs 4 --certify --emit-proof: the
// artifact directory passes the independent kmsproof audit, and its
// journal bytes and certificate count equal the serial run's. The
// two-block circuit makes certificates flow through the speculation
// cache, so the audit also covers cache-spent certificates.
TEST(KmsloopSpeculationTest, CliProofArtifactsAuditAndMatchSerial) {
  Network net = replicate_blocks(carry_skip_adder(3, 3), 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmsloop_in.blif");
  const std::string out_serial = temp_path("kmsloop_out_serial.blif");
  const std::string out_spec = temp_path("kmsloop_out_spec.blif");
  const std::string dir_serial = temp_path("kmsloop_proof_serial");
  const std::string dir_spec = temp_path("kmsloop_proof_spec");
  write_blif_file(net, in_path);
  std::system(("rm -rf " + dir_serial + " " + dir_spec).c_str());

  ASSERT_EQ(exit_code(std::string(KMSCLI_PATH) + " irr " + in_path + " -o " +
                      out_serial + " --certify --emit-proof " + dir_serial),
            0);
  ASSERT_EQ(exit_code(std::string(KMSCLI_PATH) + " irr " + in_path + " -o " +
                      out_spec + " --speculate-k 16 --jobs 4 --certify " +
                      "--emit-proof " + dir_spec),
            0);
  EXPECT_EQ(exit_code(std::string(KMSPROOF_PATH) + " " + dir_spec), 0);

  EXPECT_EQ(slurp(out_spec), slurp(out_serial));
  const std::string serial_journal = slurp(dir_serial + "/journal.txt");
  ASSERT_FALSE(serial_journal.empty());
  EXPECT_EQ(slurp(dir_spec + "/journal.txt"), serial_journal);
  EXPECT_EQ(count_cert_files(dir_spec), count_cert_files(dir_serial));

  std::remove(in_path.c_str());
  std::remove(out_serial.c_str());
  std::remove(out_spec.c_str());
  std::system(("rm -rf " + dir_serial + " " + dir_spec).c_str());
}

}  // namespace
}  // namespace kms
