#include "src/timing/path.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(PathTest, SingleChain) {
  Network net("c");
  const GateId a = net.add_input("a");
  const GateId g1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId g2 = net.add_gate(GateKind::kNot, {g1}, 1.0);
  net.add_output("f", g2);
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->source, a);
  EXPECT_EQ(p->gates.size(), 3u);  // g1, g2, output marker
  EXPECT_DOUBLE_EQ(p->length, 2.0);
  EXPECT_DOUBLE_EQ(path_length(net, *p), 2.0);
  EXPECT_FALSE(en.next().has_value());
}

TEST(PathTest, NonIncreasingLengths) {
  RandomNetworkOptions opts;
  opts.seed = 5;
  opts.gates = 40;
  Network net = random_network(opts);
  PathEnumerator en(net);
  double prev = 1e100;
  std::size_t count = 0;
  while (auto p = en.next()) {
    EXPECT_LE(p->length, prev + 1e-9);
    EXPECT_NEAR(path_length(net, *p), p->length, 1e-9);
    prev = p->length;
    if (++count > 5000) break;
  }
  EXPECT_GT(count, 0u);
}

TEST(PathTest, FirstPathMatchesTopologicalDelay) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    Network net = random_network(opts);
    PathEnumerator en(net);
    auto p = en.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->length, topological_delay(net), 1e-9) << "seed " << seed;
  }
}

TEST(PathTest, EnumeratesAllPathsOfDiamond) {
  // a -> {n1, n2} -> g: exactly two IO-paths.
  Network net("d");
  const GateId a = net.add_input("a");
  const GateId n1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId n2 = net.add_gate(GateKind::kNot, {a}, 2.0);
  const GateId g = net.add_gate(GateKind::kAnd, {n1, n2}, 1.0);
  net.add_output("f", g);
  PathEnumerator en(net);
  std::vector<double> lengths;
  while (auto p = en.next()) lengths.push_back(p->length);
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_DOUBLE_EQ(lengths[0], 3.0);
  EXPECT_DOUBLE_EQ(lengths[1], 2.0);
}

TEST(PathTest, MultiEdgeBetweenSameGates) {
  // Two connections from the same NOT to the same AND with different
  // delays: two distinct paths (Definition 4.2's reason for modeling
  // connections explicitly).
  Network net("m");
  const GateId a = net.add_input("a");
  const GateId n = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId g = net.add_gate(GateKind::kAnd, {n, n}, 1.0);
  net.conn(net.gate(g).fanins[1]).delay = 2.5;
  net.add_output("f", g);
  PathEnumerator en(net);
  std::vector<double> lengths;
  while (auto p = en.next()) lengths.push_back(p->length);
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_DOUBLE_EQ(lengths[0], 4.5);
  EXPECT_DOUBLE_EQ(lengths[1], 2.0);
}

TEST(PathTest, ArrivalTimesRankPaths) {
  Network net("a");
  const GateId a = net.add_input("a", 0.0);
  const GateId b = net.add_input("b", 5.0);
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  PathEnumerator en(net);
  auto p1 = en.next();
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->source, b);
  EXPECT_DOUBLE_EQ(p1->length, 6.0);
  auto p2 = en.next();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->source, a);
}

TEST(PathTest, LongestPathsReturnsTies) {
  Network net("t");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  const auto paths = longest_paths(net);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(PathTest, PathCountMatchesDpCount) {
  // Count IO-paths by dynamic programming and compare with exhaustive
  // enumeration on small random circuits.
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 20;
    Network net = random_network(opts);
    // DP: paths from each gate to any output.
    std::vector<double> count(net.gate_capacity(), 0.0);
    const auto order = net.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Gate& gt = net.gate(*it);
      if (gt.kind == GateKind::kOutput) {
        count[it->value()] = 1.0;
        continue;
      }
      double c = 0;
      for (ConnId cn : gt.fanouts)
        if (!net.conn(cn).dead) c += count[net.conn(cn).to.value()];
      count[it->value()] = c;
    }
    double expected = 0;
    for (GateId i : net.inputs()) expected += count[i.value()];
    PathEnumerator en(net);
    std::size_t n = 0;
    while (en.next().has_value()) {
      if (++n > 200000) break;
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(n), expected) << "seed " << seed;
  }
}

TEST(PathTest, FormatPathMentionsEndpoints) {
  Network net = carry_skip_adder(2, 2, {});
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  const std::string s = format_path(net, *p);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(PathTest, ReseedReplaysTheExactSequence) {
  // reseed() must restart the enumeration from scratch — same paths,
  // same order — whether the suffix table is owned or caller-held.
  RandomNetworkOptions opts;
  opts.seed = 11;
  opts.gates = 40;
  const Network net = random_network(opts);
  const std::vector<double> suffix = compute_suffix(net);
  const auto check = [&](PathEnumerator& en, bool seeded) {
    std::vector<Path> first;
    while (auto p = en.next()) {
      first.push_back(std::move(*p));
      if (first.size() >= 200) break;
    }
    ASSERT_GT(first.size(), 1u);
    const std::uint64_t visits = en.last_seed_visits();
    EXPECT_EQ(visits, net.inputs().size());
    en.reseed();
    EXPECT_EQ(en.last_seed_visits(), visits);
    for (std::size_t i = 0; i < first.size(); ++i) {
      auto p = en.next();
      ASSERT_TRUE(p.has_value()) << "seeded=" << seeded << " i=" << i;
      EXPECT_TRUE(same_path(*p, first[i])) << "seeded=" << seeded
                                           << " i=" << i;
      EXPECT_EQ(path_signature(*p), path_signature(first[i]));
    }
  };
  {
    PathEnumerator en(net);
    check(en, false);
  }
  {
    PathEnumerator en(net, suffix);
    check(en, true);
  }
}

TEST(PathTest, PathSignatureSeparatesDistinctPaths) {
  // Not a collision-freeness proof — just that the signature actually
  // depends on the route: across one circuit's full enumeration, all
  // pairwise-distinct paths get distinct signatures.
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  PathEnumerator en(net);
  std::set<std::uint64_t> sigs;
  std::size_t count = 0;
  while (auto p = en.next()) {
    EXPECT_TRUE(same_path(*p, *p));
    sigs.insert(path_signature(*p));
    if (++count >= 2000) break;
  }
  EXPECT_EQ(sigs.size(), count);
}

}  // namespace
}  // namespace kms
