#include "src/gen/random_logic.hpp"

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"

namespace kms {
namespace {

TEST(RandomLogicTest, DeterministicInSeed) {
  RandomNetworkOptions opts;
  opts.seed = 5;
  Network a = random_network(opts);
  Network b = random_network(opts);
  EXPECT_EQ(a.count_gates(), b.count_gates());
  EXPECT_TRUE(exhaustive_equiv(a, b).equivalent);
}

TEST(RandomLogicTest, RespectsInterfaceCounts) {
  RandomNetworkOptions opts;
  opts.inputs = 5;
  opts.outputs = 3;
  opts.seed = 9;
  Network net = random_network(opts);
  EXPECT_EQ(net.inputs().size(), 5u);
  EXPECT_EQ(net.outputs().size(), 3u);
  EXPECT_EQ(net.check(), "");
}

TEST(RandomLogicTest, DifferentSeedsGiveDifferentCircuits) {
  RandomNetworkOptions opts;
  opts.seed = 1;
  Network a = random_network(opts);
  opts.seed = 2;
  Network b = random_network(opts);
  EXPECT_FALSE(exhaustive_equiv(a, b).equivalent);
}

TEST(RandomLogicTest, ParityTreeComputesParity) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    Network net = parity_tree(n);
    for (std::uint32_t v = 0; v < (1u << n); ++v) {
      std::vector<bool> pis;
      int ones = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (v >> i) & 1;
        pis.push_back(bit);
        ones += bit;
      }
      EXPECT_EQ(eval_once(net, pis)[0], ones % 2 == 1) << n << " " << v;
    }
  }
}

TEST(RandomLogicTest, ComparatorComparesCorrectly) {
  const std::size_t bits = 3;
  Network net = comparator(bits);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      std::vector<bool> pis;
      for (std::size_t i = 0; i < bits; ++i) pis.push_back((a >> i) & 1);
      for (std::size_t i = 0; i < bits; ++i) pis.push_back((b >> i) & 1);
      const auto out = eval_once(net, pis);
      EXPECT_EQ(out[0], a > b) << a << " vs " << b;
      EXPECT_EQ(out[1], a == b) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace kms
