// Crash-equivalence property suite for the durable session layer.
//
// The property: a proof-carrying KMS run killed at ANY durability kill
// point (every fsync / rename boundary of the WAL, checkpoint and
// artifact writes), then resumed from its artifact directory, produces
// a final result bit-identical to the uninterrupted run — output BLIF
// bytes, removed-fault counts, and (at jobs=1, where certificate
// content is schedule-independent) the journal bytes; the finalized
// artifact directory passes the independent checker either way.
//
// The harness enumerates the reachable kill points with a counting
// reference run, then for each index arms KillMode::kThrow (a simulated
// in-process crash that unwinds exactly where a SIGKILL would have cut)
// and replays crash → resume → compare. A crash before the session's
// meta record is durable legitimately has nothing to resume — the
// harness asserts the error is precise and restarts from the source,
// exactly as a user would. A crash after the final record is a
// completed session — resume must refuse and the artifacts must already
// verify.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/base/durable.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/proof/journal.hpp"
#include "src/proof/verify.hpp"
#include "src/recover/session.hpp"

namespace kms {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct RunResult {
  bool crashed = false;
  std::string output;  ///< write_blif_string of the final network
  KmsStats stats;
};

/// The durable pipeline exactly as `kmscli irr --emit-proof` drives it,
/// in-process so KillMode::kThrow can cut it at any boundary.
RunResult run_fresh(const std::string& dir, const std::string& source,
                    unsigned jobs, std::uint64_t checkpoint_every) {
  RunResult rr;
  try {
    BlifSequential model = read_blif_sequential_string(source);
    proof::ProofSession session;
    const std::string proof_input = write_blif_string(model.comb);
    session.journal.set_model(model.comb.name());
    session.journal.set_input_digest(proof::digest_bytes(proof_input));
    KmsOptions opts;
    const recover::SessionMeta meta =
        recover::make_meta(model.comb.name(), opts, jobs, checkpoint_every,
                           proof::digest_bytes(source));
    recover::DurableSession dur =
        recover::DurableSession::create(dir, meta, source, &session);
    opts.context.session = &session;
    opts.context.sink = &dur;
    opts.context.jobs = jobs;
    rr.stats = kms_make_irredundant(model.comb, opts);
    rr.output = write_blif_string(model.comb);
    session.journal.set_output_digest(proof::digest_bytes(rr.output));
    dur.finalize(proof_input, rr.output);
  } catch (const CrashInjected&) {
    rr.crashed = true;
  }
  return rr;
}

/// Resume a crashed directory. Throws what prepare_resume throws (the
/// caller decides what a refusal means for the property).
RunResult run_resume(const std::string& dir, unsigned jobs) {
  RunResult rr;
  recover::ResumeSetup rs = recover::prepare_resume(dir);
  try {
    recover::DurableSession dur =
        recover::DurableSession::attach(dir, rs.info, &rs.session);
    KmsOptions opts;
    recover::apply_meta(rs.info.meta, &opts);
    if (rs.info.has_checkpoint) opts.resume = &rs.state;
    opts.context.session = &rs.session;
    opts.context.sink = &dur;
    opts.context.jobs = jobs;
    rr.stats = kms_make_irredundant(rs.model.comb, opts);
    rr.output = write_blif_string(rs.model.comb);
    rs.session.journal.set_output_digest(proof::digest_bytes(rr.output));
    dur.finalize(rs.proof_input, rr.output);
  } catch (const CrashInjected&) {
    rr.crashed = true;
  }
  return rr;
}

/// Errors that only a crash BEFORE the first committed record can
/// produce: the directory holds no session yet, so "resume" means
/// starting over from the original source — anything else is a bug.
bool never_started(const std::string& msg) {
  return msg.find("cannot open") != std::string::npos ||
         msg.find("holds no committed records") != std::string::npos ||
         msg.find("does not start with a meta record") != std::string::npos;
}

/// After a crash: resume if a session was committed, restart if not,
/// accept a completed session as-is. Returns the final output bytes.
std::string finish_after_crash(const std::string& dir,
                               const std::string& source, unsigned jobs,
                               std::uint64_t checkpoint_every) {
  try {
    const RunResult r = run_resume(dir, jobs);
    EXPECT_FALSE(r.crashed) << "resume crashed with kill points disarmed";
    return r.output;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    if (msg.find("nothing to resume") != std::string::npos) {
      // The crash hit after the final record: session is complete.
      return slurp(dir + "/output.blif");
    }
    if (!never_started(msg)) throw;  // a real resume bug — fail the test
    fs::remove_all(dir);
    const RunResult r = run_fresh(dir, source, jobs, checkpoint_every);
    EXPECT_FALSE(r.crashed);
    return r.output;
  }
}

std::string carry_skip_source() {
  const Network net = carry_skip_adder(3, 3);
  return write_blif_string(net);
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    kill_points_configure(KillMode::kOff);
    fs::remove_all(dir_);
  }
  std::string dir_;
};

/// The core property at jobs=1, checkpoint every commit: crash at every
/// reachable kill point, resume, require bit-identical output AND
/// byte-identical journal, and a verifying artifact directory.
TEST_F(CrashResumeTest, EveryKillPointResumesIdenticallyJobs1) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_j1");
  fs::remove_all(dir_);

  kill_points_configure(KillMode::kCount);
  const RunResult ref = run_fresh(dir_, source, /*jobs=*/1, /*every=*/1);
  const std::uint64_t total = kill_points_seen();
  kill_points_configure(KillMode::kOff);
  ASSERT_FALSE(ref.crashed);
  ASSERT_GT(total, 10u);
  const std::string ref_journal = slurp(dir_ + "/journal.txt");
  ASSERT_FALSE(ref_journal.empty());
  ASSERT_TRUE(proof::verify_artifact_dir(dir_).ok);

  for (std::uint64_t k = 1; k <= total; ++k) {
    fs::remove_all(dir_);
    kill_points_configure(KillMode::kThrow, k);
    const RunResult crashed = run_fresh(dir_, source, 1, 1);
    kill_points_configure(KillMode::kOff);
    ASSERT_TRUE(crashed.crashed) << "kill point " << k << " not reached";
    const std::string out = finish_after_crash(dir_, source, 1, 1);
    EXPECT_EQ(out, ref.output) << "output diverged after crash at " << k;
    EXPECT_EQ(slurp(dir_ + "/journal.txt"), ref_journal)
        << "journal diverged after crash at " << k;
    const proof::VerifyReport rep = proof::verify_artifact_dir(dir_);
    EXPECT_TRUE(rep.ok) << "crash at " << k << ": " << rep.error;
  }
}

/// Same property at jobs=4 (checkpoint every 2 commits for cadence
/// diversity). Certificate bytes are schedule-dependent across workers,
/// so the assertion is output bits + removal counts + an artifact
/// directory that verifies — not journal byte-equality.
TEST_F(CrashResumeTest, EveryKillPointResumesIdenticallyJobs4) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_j4");
  fs::remove_all(dir_);

  kill_points_configure(KillMode::kCount);
  const RunResult ref = run_fresh(dir_, source, /*jobs=*/4, /*every=*/2);
  const std::uint64_t total = kill_points_seen();
  kill_points_configure(KillMode::kOff);
  ASSERT_FALSE(ref.crashed);
  ASSERT_TRUE(proof::verify_artifact_dir(dir_).ok);

  for (std::uint64_t k = 1; k <= total; ++k) {
    fs::remove_all(dir_);
    kill_points_configure(KillMode::kThrow, k);
    const RunResult crashed = run_fresh(dir_, source, 4, 2);
    kill_points_configure(KillMode::kOff);
    ASSERT_TRUE(crashed.crashed) << "kill point " << k << " not reached";
    const std::string out = finish_after_crash(dir_, source, 4, 2);
    EXPECT_EQ(out, ref.output) << "output diverged after crash at " << k;
    const proof::VerifyReport rep = proof::verify_artifact_dir(dir_);
    EXPECT_TRUE(rep.ok) << "crash at " << k << ": " << rep.error;
  }
}

/// Crashing the RESUME run too (a double crash) still converges.
TEST_F(CrashResumeTest, DoubleCrashStillConverges) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_double");
  fs::remove_all(dir_);

  kill_points_configure(KillMode::kCount);
  const RunResult ref = run_fresh(dir_, source, 1, 1);
  const std::uint64_t total = kill_points_seen();
  kill_points_configure(KillMode::kOff);
  ASSERT_FALSE(ref.crashed);
  const std::string ref_journal = slurp(dir_ + "/journal.txt");

  // First crash mid-run, second crash early in the resume.
  for (const std::uint64_t first : {total / 3, total / 2, total - 1}) {
    if (first == 0) continue;
    fs::remove_all(dir_);
    kill_points_configure(KillMode::kThrow, first);
    ASSERT_TRUE(run_fresh(dir_, source, 1, 1).crashed);
    kill_points_configure(KillMode::kThrow, 3);
    try {
      const RunResult again = run_resume(dir_, 1);
      EXPECT_TRUE(again.crashed);  // must not survive an armed kill point
    } catch (const std::runtime_error&) {
      // Crash #1 predated any committed record; nothing to re-crash.
    }
    kill_points_configure(KillMode::kOff);
    const std::string out = finish_after_crash(dir_, source, 1, 1);
    EXPECT_EQ(out, ref.output) << "double crash at " << first;
    EXPECT_EQ(slurp(dir_ + "/journal.txt"), ref_journal);
    EXPECT_TRUE(proof::verify_artifact_dir(dir_).ok);
  }
}

/// Loop-accounting equivalence: a resumed run's incremental-STA and
/// enumerator-seed counters must equal the uninterrupted run's. Before
/// the continuous sync, loop-phase checkpoints serialized zeros for the
/// sta_* fields (they were only folded in at the very end) and a resume
/// then double-counted the attach-time constructor rebuild on top of
/// whatever the restored stats carried.
TEST_F(CrashResumeTest, ResumedStaTotalsEqualUninterrupted) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_sta");
  fs::remove_all(dir_);

  kill_points_configure(KillMode::kCount);
  const RunResult ref = run_fresh(dir_, source, 1, 1);
  const std::uint64_t total = kill_points_seen();
  kill_points_configure(KillMode::kOff);
  ASSERT_FALSE(ref.crashed);
  ASSERT_TRUE(ref.stats.sta_incremental);
  ASSERT_GT(ref.stats.sta_applies, 0u);
  ASSERT_GT(ref.stats.sta_enum_reseeds, 0u);

  std::size_t compared = 0;
  for (const std::uint64_t k :
       {total / 4, total / 3, total / 2, (2 * total) / 3}) {
    if (k == 0) continue;
    fs::remove_all(dir_);
    kill_points_configure(KillMode::kThrow, k);
    ASSERT_TRUE(run_fresh(dir_, source, 1, 1).crashed)
        << "kill point " << k << " not reached";
    kill_points_configure(KillMode::kOff);
    RunResult resumed;
    try {
      resumed = run_resume(dir_, 1);
    } catch (const std::runtime_error&) {
      continue;  // crash predated the first committed record
    }
    ASSERT_FALSE(resumed.crashed);
    EXPECT_EQ(resumed.output, ref.output) << "kill point " << k;
    EXPECT_EQ(resumed.stats.sta_applies, ref.stats.sta_applies) << k;
    EXPECT_EQ(resumed.stats.sta_rebuilds, ref.stats.sta_rebuilds) << k;
    EXPECT_EQ(resumed.stats.sta_gates_repaired, ref.stats.sta_gates_repaired)
        << k;
    EXPECT_EQ(resumed.stats.sta_full_visits, ref.stats.sta_full_visits) << k;
    EXPECT_EQ(resumed.stats.sta_enum_reseeds, ref.stats.sta_enum_reseeds)
        << k;
    EXPECT_EQ(resumed.stats.sta_enum_seed_visits,
              ref.stats.sta_enum_seed_visits)
        << k;
    EXPECT_EQ(resumed.stats.iterations, ref.stats.iterations) << k;
    ++compared;
  }
  EXPECT_GT(compared, 0u) << "no kill point produced a resumable session";
}

/// Resume must reject a session whose source file was swapped out.
TEST_F(CrashResumeTest, RejectsTamperedSource) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_tamper");
  fs::remove_all(dir_);
  kill_points_configure(KillMode::kCount);
  const RunResult ref = run_fresh(dir_, source, 1, 1);
  const std::uint64_t total = kill_points_seen();
  kill_points_configure(KillMode::kThrow, total / 2);
  fs::remove_all(dir_);
  ASSERT_TRUE(run_fresh(dir_, source, 1, 1).crashed);
  kill_points_configure(KillMode::kOff);
  {
    std::ofstream out(dir_ + "/source.blif", std::ios::trunc);
    out << ".model forged\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
  }
  EXPECT_THROW(run_resume(dir_, 1), std::runtime_error);
  (void)ref;
}

/// A completed session must refuse to resume.
TEST_F(CrashResumeTest, RefusesToResumeCompletedSession) {
  const std::string source = carry_skip_source();
  dir_ = temp_dir("crash_resume_done");
  fs::remove_all(dir_);
  ASSERT_FALSE(run_fresh(dir_, source, 1, 1).crashed);
  try {
    run_resume(dir_, 1);
    FAIL() << "resume of a completed session must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nothing to resume"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace kms
