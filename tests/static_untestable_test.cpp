// Soundness and integrity suite for the SAT-free untestability
// pre-pass (the static analysis tentpole):
//
//  * property: every static untestability verdict is confirmed by the
//    exact SAT engine on the example corpus, random circuits and the
//    statically-redundant generator — the rules must never be wrong;
//  * every justification re-derives on a network parsed back from the
//    structural snapshot it was stated against, and a tampered
//    justification is rejected;
//  * the pre-pass never changes the removal result, only the number of
//    SAT queries spent reaching it;
//  * fault injection: an aborted run never records a vacuous static
//    verdict — static journal steps exist only for removals that were
//    actually committed, and each one still re-derives.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/analysis/snapshot.hpp"
#include "src/analysis/static_untestable.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/fault.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/base/governor.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"

namespace kms {
namespace {

namespace fs = std::filesystem;

using analysis::StaticResult;
using analysis::StaticUntestable;
using proof::JournalStep;
using proof::ProofSession;

/// n blocks of y_i = a_i AND (a_i AND b_i): 2n statically provable
/// (blocked) branch redundancies, nothing else.
Network statred_blocks(std::size_t blocks) {
  std::string blif = ".model statred\n.inputs";
  for (std::size_t i = 0; i < blocks; ++i)
    blif += " a" + std::to_string(i) + " b" + std::to_string(i);
  blif += "\n.outputs";
  for (std::size_t i = 0; i < blocks; ++i) blif += " y" + std::to_string(i);
  blif += "\n";
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::string n = std::to_string(i);
    blif += ".names a" + n + " b" + n + " x" + n + "\n11 1\n";
    blif += ".names a" + n + " x" + n + " y" + n + "\n11 1\n";
  }
  blif += ".end\n";
  Network net = read_blif_string(blif);
  decompose_to_simple(net);
  return net;
}

/// statred blocks plus one consensus cone (f = ab + a'c + bc): mixes
/// statically provable redundancies with one only SAT can prove.
Network mixed_redundancies() {
  Network net = read_blif_string(
      ".model mixed\n"
      ".inputs a b c p q\n"
      ".outputs f y\n"
      ".names a b x\n11 1\n"
      ".names a c u\n01 1\n"
      ".names b c z\n11 1\n"
      ".names x u z f\n1-- 1\n-1- 1\n--1 1\n"
      ".names p q w\n11 1\n"
      ".names p w y\n11 1\n"
      ".end\n");
  decompose_to_simple(net);
  return net;
}

StaticResult analyze(const StaticUntestable& engine, const Fault& f) {
  return f.site == Fault::Site::kStem ? engine.analyze_stem(f.gate, f.stuck)
                                      : engine.analyze_branch(f.conn, f.stuck);
}

/// The core soundness check: every static verdict on `net` must agree
/// with the exact SAT engine, and every justification must re-derive on
/// the snapshot. Returns the number of statically discharged faults.
std::size_t check_soundness(const Network& net, const std::string& label) {
  const StaticUntestable engine(net);
  Atpg exact(net);  // no oracle, no governor: verdicts are exact
  std::size_t hits = 0;
  Network from_snapshot;
  for (const Fault& f : collapsed_faults(net)) {
    const StaticResult r = analyze(engine, f);
    if (!r.untestable()) continue;
    ++hits;
    EXPECT_EQ(exact.generate_test(f).outcome, TestOutcome::kUntestable)
        << label << ": static engine wrongly called "
        << format_fault(net, f) << " untestable ("
        << r.justification << ")";
    if (hits == 1)
      from_snapshot = analysis::read_snapshot(analysis::write_snapshot(net));
    EXPECT_EQ(analysis::verify_static_claim(from_snapshot, r.justification),
              "")
        << label << ": justification failed to re-derive: "
        << r.justification;
  }
  return hits;
}

TEST(StaticUntestableTest, VerdictsMatchExactSatOnExampleCorpus) {
  std::size_t total = 0;
  for (const auto& entry : fs::directory_iterator(EXAMPLES_DIR)) {
    if (entry.path().extension() != ".blif") continue;
    std::ifstream in(entry.path());
    BlifSequential model = read_blif_sequential(in);
    decompose_to_simple(model.comb);
    total += check_soundness(model.comb, entry.path().filename().string());
  }
  // Acceptance: the pre-pass discharges at least one untestable fault
  // SAT-free on the shipped example corpus.
  EXPECT_GE(total, 1u);
}

TEST(StaticUntestableTest, VerdictsMatchExactSatOnGeneratedCircuits) {
  std::size_t total = 0;
  total += check_soundness(statred_blocks(4), "statred_4");
  total += check_soundness(mixed_redundancies(), "mixed");
  {
    Network csa = carry_skip_adder(4, 2);
    decompose_to_simple(csa);
    total += check_soundness(csa, "csa_4_2");
  }
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 40;
    Network net = random_network(opts);
    decompose_to_simple(net);
    total += check_soundness(net, "random_" + std::to_string(seed));
  }
  EXPECT_GE(total, 8u);  // each statred block contributes two
}

TEST(StaticUntestableTest, VerifierRejectsTamperedJustifications) {
  const Network net = statred_blocks(1);
  const Network snap = analysis::read_snapshot(analysis::write_snapshot(net));
  const StaticUntestable engine(net);
  std::size_t checked = 0;
  for (const Fault& f : collapsed_faults(net)) {
    const StaticResult r = analyze(engine, f);
    if (!r.untestable()) continue;
    ++checked;
    // Flip the claimed stuck value: the claim must stop re-deriving.
    std::string flipped = r.justification;
    const auto pos = flipped.find("stuck=");
    ASSERT_NE(pos, std::string::npos);
    flipped[pos + 6] = flipped[pos + 6] == '0' ? '1' : '0';
    EXPECT_NE(analysis::verify_static_claim(snap, flipped), "")
        << "tampered stuck value accepted: " << flipped;
    // Garbage is rejected, not crashed on.
    EXPECT_NE(analysis::verify_static_claim(snap, "site=stem:0"), "");
    EXPECT_NE(analysis::verify_static_claim(snap, ""), "");
  }
  EXPECT_GT(checked, 0u);
}

TEST(StaticUntestableTest, AnalysisIsDeterministic) {
  const Network net = mixed_redundancies();
  const StaticUntestable a(net), b(net);
  for (const Fault& f : collapsed_faults(net)) {
    const StaticResult ra = analyze(a, f), rb = analyze(b, f);
    EXPECT_EQ(ra.verdict, rb.verdict);
    EXPECT_EQ(ra.justification, rb.justification);
  }
}

TEST(StaticUntestableTest, PrepassPreservesRemovalResultExactly) {
  for (Network original : {statred_blocks(3), mixed_redundancies()}) {
    Network off_net = original.clone_compact();
    Network on_net = original.clone_compact();
    RedundancyRemovalOptions off_opts, on_opts;
    off_opts.static_prepass = false;
    on_opts.static_prepass = true;
    const auto off = remove_redundancies(off_net, off_opts);
    const auto on = remove_redundancies(on_net, on_opts);
    EXPECT_EQ(off.removed, on.removed);
    EXPECT_EQ(write_blif_string(off_net), write_blif_string(on_net))
        << "pre-pass changed the removal result";
    EXPECT_EQ(off.static_discharged, 0u);
    EXPECT_GT(on.static_discharged, 0u);
    EXPECT_LT(on.sat_queries, off.sat_queries);
    // Accounting identity: every query is a solve, a structural
    // shortcut, or a static discharge.
    EXPECT_EQ(on.atpg.queries, on.atpg.sat_solves +
                                   on.atpg.structural_shortcuts +
                                   on.atpg.static_discharged);
  }
}

// ---- fault injection: no vacuous static verdicts -------------------------

std::size_t count_steps(const ProofSession& session, JournalStep::Kind kind) {
  std::size_t n = 0;
  for (const JournalStep& s : session.journal.steps())
    if (s.kind == kind) ++n;
  return n;
}

TEST(StaticUntestableTest, InterruptedRunRecordsNoStaticVerdicts) {
  // The oracle provably holds verdicts for this circuit...
  Network net = statred_blocks(4);
  EXPECT_GT(check_soundness(net, "statred_4"), 0u);
  // ...yet a run interrupted before any commit must journal none of
  // them: a static verdict is only recorded when its removal commits.
  ResourceGovernor gov;
  gov.request_interrupt();
  ProofSession session;
  session.journal.set_model(net.name());
  RedundancyRemovalOptions opts;
  opts.static_prepass = true;
  opts.context.governor = &gov;
  opts.context.session = &session;
  const auto r = remove_redundancies(net, opts);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(count_steps(session, JournalStep::Kind::kFaultStaticUntestable),
            0u);
  EXPECT_EQ(count_steps(session, JournalStep::Kind::kDeleteStatic), 0u);
  EXPECT_TRUE(session.static_certificates().empty());
}

TEST(StaticUntestableTest, AbortedRunsNeverJournalVacuousStaticClaims) {
  // Across a sweep of mid-run cancellation schedules: however far the
  // loop got, (a) static steps come in matched pairs with their
  // deletions, (b) every static claim cites a registered certificate
  // whose justification re-derives on its own snapshot, and (c) the
  // deletion count in the journal equals the removals actually applied.
  for (std::uint64_t cancel_after = 0; cancel_after < 6; ++cancel_after) {
    Network net = mixed_redundancies();
    ResourceGovernor gov;
    gov.set_injector(FaultInjector::random(/*seed=*/cancel_after + 1,
                                           /*abort_probability=*/0.3,
                                           cancel_after));
    ProofSession session;
    session.journal.set_model(net.name());
    RedundancyRemovalOptions opts;
    opts.static_prepass = true;
    opts.context.governor = &gov;
    opts.context.session = &session;
    const auto r = remove_redundancies(net, opts);

    const std::size_t claims =
        count_steps(session, JournalStep::Kind::kFaultStaticUntestable);
    const std::size_t static_deletes =
        count_steps(session, JournalStep::Kind::kDeleteStatic);
    const std::size_t sat_deletes =
        count_steps(session, JournalStep::Kind::kDelete);
    EXPECT_EQ(claims, static_deletes)
        << "static claim journalled without its committed deletion";
    EXPECT_EQ(sat_deletes + static_deletes, r.removed)
        << "journalled deletions disagree with removals applied";
    EXPECT_LE(claims, r.static_discharged);

    ASSERT_EQ(session.static_certificates().size(), claims);
    for (const JournalStep& s : session.journal.steps()) {
      if (s.kind != JournalStep::Kind::kFaultStaticUntestable) continue;
      ASSERT_GE(s.proof, 0);
      ASSERT_LT(static_cast<std::size_t>(s.proof),
                session.static_certificates().size());
      const proof::StaticCertificate& cert =
          session.static_certificates()[static_cast<std::size_t>(s.proof)];
      ASSERT_NE(cert.snapshot, nullptr);
      EXPECT_EQ(s.count, proof::digest_bytes(*cert.snapshot));
      EXPECT_EQ(s.just, cert.justification);
      const Network snap = analysis::read_snapshot(*cert.snapshot);
      EXPECT_EQ(analysis::verify_static_claim(snap, cert.justification), "")
          << "aborted run journalled a static claim that does not "
          << "re-derive: " << cert.justification;
    }
  }
}

TEST(StaticUntestableTest, JournalStaticStepsSurviveTextRoundTrip) {
  Network net = statred_blocks(2);
  ProofSession session;
  session.journal.set_model(net.name());
  const std::string input = write_blif_string(net);
  session.journal.set_input_digest(proof::digest_bytes(input));
  RedundancyRemovalOptions opts;
  opts.static_prepass = true;
  opts.context.session = &session;
  const auto r = remove_redundancies(net, opts);
  EXPECT_GT(r.static_discharged, 0u);
  session.journal.set_output_digest(
      proof::digest_bytes(write_blif_string(net)));

  std::istringstream in(session.journal.to_text());
  const proof::TransformJournal back = proof::TransformJournal::read(in);
  ASSERT_EQ(back.steps().size(), session.journal.steps().size());
  for (std::size_t i = 0; i < back.steps().size(); ++i) {
    const JournalStep& a = session.journal.steps()[i];
    const JournalStep& b = back.steps()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.proof, b.proof);
    EXPECT_EQ(a.what, b.what);
    EXPECT_EQ(a.just, b.just);
    EXPECT_EQ(a.count, b.count);
  }
}

}  // namespace
}  // namespace kms
