// Reproduces the numbers of Section III of the paper on the 2-b
// carry-skip adder of Fig. 1:
//   * inputs arrive at t=0 except c0 at t=5; AND/OR delay 1, XOR/MUX 2;
//   * the critical (sensitizable) path of the carry cone has length 8;
//   * the longest path (c0 through the ripple chain) has length 11 and
//     is NOT statically sensitizable;
//   * the stuck-at-0 fault on the skip AND (gate 10) is untestable;
//   * with that fault present the circuit needs 11 gate delays — the
//     "speedtest" hazard;
//   * the KMS algorithm produces an equivalent, fully testable circuit
//     that is no slower (Figs. 2/6).
#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/atpg/inject.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

AdderOptions section3_options() {
  AdderOptions opts;
  opts.and_or_delay = 1.0;
  opts.xor_mux_delay = 2.0;
  opts.cin_arrival = 5.0;
  return opts;
}

/// The Fig. 4 subcircuit: the carry bit c2 of the 2-b carry-skip adder,
/// as simple gates.
Network carry_cone() {
  Network net = carry_skip_adder(2, 2, section3_options());
  Network cone = extract_output(net, net.outputs().size() - 1);  // cout
  decompose_to_simple(cone);
  return cone;
}

TEST(PaperExampleTest, LongestPathIsElevenGateDelays) {
  Network cone = carry_cone();
  EXPECT_DOUBLE_EQ(topological_delay(cone), 11.0);
}

TEST(PaperExampleTest, LongestPathStartsAtCarryIn) {
  Network cone = carry_cone();
  PathEnumerator en(cone);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->length, 11.0);
  EXPECT_EQ(cone.gate(p->source).name, "cin");
}

TEST(PaperExampleTest, LongestPathNotStaticallySensitizable) {
  Network cone = carry_cone();
  Sensitizer sens(cone, SensitizationMode::kStatic);
  PathEnumerator en(cone);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(sens.check(*p).has_value());
}

TEST(PaperExampleTest, LongestPathNotViableEither) {
  // "We have only found one real family of circuits, the carry-skip
  // adder, with stuck-at-fault redundancies and no viable longest path."
  Network cone = carry_cone();
  Sensitizer sens(cone, SensitizationMode::kViability);
  PathEnumerator en(cone);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(sens.check(*p).has_value());
}

TEST(PaperExampleTest, CriticalPathIsEightGateDelays) {
  Network cone = carry_cone();
  const DelayReport r = computed_delay(cone, SensitizationMode::kStatic);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.delay, 8.0);
  // The witness starts at an arrival-0 operand input, not at cin.
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_NE(cone.gate(r.witness->source).name, "cin");
}

TEST(PaperExampleTest, SkipAndStuckAtZeroIsRedundant) {
  Network cone = carry_cone();
  // Locate the skip AND by name (named by the generator).
  GateId skip = GateId::invalid();
  for (std::uint32_t i = 0; i < cone.gate_capacity(); ++i)
    if (!cone.gate(GateId{i}).dead && cone.gate(GateId{i}).name == "skip0")
      skip = GateId{i};
  ASSERT_TRUE(skip.is_valid());
  Atpg atpg(cone);
  const Fault sa0{Fault::Site::kStem, skip, ConnId::invalid(), false};
  EXPECT_FALSE(atpg.is_testable(sa0));
  // ... and the circuit has at least one redundancy overall.
  EXPECT_GE(count_redundancies(cone), 1u);
}

TEST(PaperExampleTest, FaultyCircuitNeedsElevenGateDelays) {
  Network cone = carry_cone();
  GateId skip = GateId::invalid();
  for (std::uint32_t i = 0; i < cone.gate_capacity(); ++i)
    if (!cone.gate(GateId{i}).dead && cone.gate(GateId{i}).name == "skip0")
      skip = GateId{i};
  ASSERT_TRUE(skip.is_valid());
  const Fault sa0{Fault::Site::kStem, skip, ConnId::invalid(), false};
  // NOTE: the faulty machine keeps its physical structure (the MUX is
  // still on the chip) — no simplification, only the stuck value.
  Network faulty = inject_fault(cone, sa0);
  // The faulty machine behaves as a ripple-carry adder: its longest
  // path is now sensitizable and the output is only valid after 11
  // gate delays.
  const DelayReport r = computed_delay(faulty, SensitizationMode::kStatic);
  EXPECT_DOUBLE_EQ(r.delay, 11.0);
}

TEST(PaperExampleTest, KmsProducesEquallyFastIrredundantCone) {
  Network cone = carry_cone();
  Network original = cone;  // keep for the equivalence check
  KmsOptions opts;
  const KmsStats stats = kms_make_irredundant(cone, opts);
  EXPECT_EQ(cone.check(), "");
  // Functionally identical (exhaustive: 5 inputs).
  EXPECT_TRUE(exhaustive_equiv(original, cone).equivalent);
  // No slower than the original's computed delay of 8.
  EXPECT_LE(stats.final_computed_delay, 8.0 + 1e-9);
  EXPECT_LE(stats.final_topo_delay, 8.0 + 1e-9);
  // Fully testable now: a speedtest is no longer required.
  EXPECT_EQ(count_redundancies(cone), 0u);
  // The loop performed at least one first-edge constant assertion.
  EXPECT_GE(stats.constants_set, 1u);
}

TEST(PaperExampleTest, KmsOnFullAdderKeepsAllOutputs) {
  // "if the algorithm is performed on the entire multiple output 2-b
  // adder circuit then a different version of an irredundant circuit is
  // obtained ... also no slower than the original circuit."
  Network net = carry_skip_adder(2, 2, section3_options());
  decompose_to_simple(net);
  Network original = net;
  const double before = computed_delay(net, SensitizationMode::kStatic).delay;
  const KmsStats stats = kms_make_irredundant(net, {});
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(exhaustive_equiv(original, net).equivalent);
  EXPECT_LE(stats.final_computed_delay, before + 1e-9);
  EXPECT_EQ(count_redundancies(net), 0u);
}

}  // namespace
}  // namespace kms
