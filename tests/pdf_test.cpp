#include "src/timing/pdf.hpp"

#include <gtest/gtest.h>

#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/path.hpp"

namespace kms {
namespace {

/// Verify a returned two-vector test on the simulator: v1 and v2 must
/// differ at the source, v2 must sensitize the path statically, and the
/// steady-side conditions must hold.
void verify_pdf_test(const Network& net, const Path& p, const PdfTest& t) {
  ASSERT_EQ(t.v1.size(), net.inputs().size());
  Simulator sim1(net), sim2(net);
  std::vector<std::uint64_t> w1, w2;
  for (bool b : t.v1) w1.push_back(b ? ~0ull : 0);
  for (bool b : t.v2) w2.push_back(b ? ~0ull : 0);
  sim1.run(w1);
  sim2.run(w2);
  EXPECT_NE(sim1.gate_word(p.source) & 1, sim2.gate_word(p.source) & 1);
  for (std::size_t i = 0; i < p.gates.size(); ++i) {
    const Gate& gt = net.gate(p.gates[i]);
    if (!has_controlling_value(gt.kind)) continue;
    for (ConnId c : gt.fanins) {
      if (c == p.conns[i]) continue;
      const GateId s = net.conn(c).from;
      EXPECT_EQ(static_cast<bool>(sim2.gate_word(s) & 1),
                noncontrolling_value(gt.kind))
          << "final side value at " << format_path(net, p);
    }
  }
}

TEST(PdfTest, InverterChainAlwaysTestable) {
  Network net("c");
  const GateId a = net.add_input("a");
  GateId g = a;
  for (int i = 0; i < 4; ++i) g = net.add_gate(GateKind::kNot, {g}, 1.0);
  net.add_output("f", g);
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  for (bool rising : {true, false}) {
    auto t = robust_pdf_test(net, *p, rising);
    ASSERT_TRUE(t.has_value());
    verify_pdf_test(net, *p, *t);
  }
}

TEST(PdfTest, AndGatePathNeedsSteadySide) {
  Network net("a");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  PathEnumerator en(net);
  while (auto p = en.next()) {
    auto t = robust_pdf_test(net, *p, true);
    ASSERT_TRUE(t.has_value()) << format_path(net, *p);
    verify_pdf_test(net, *p, *t);
    // Rising transition through an AND needs the side input steady 1.
    const std::size_t side = p->source == a ? 1 : 0;
    EXPECT_TRUE(t->v1[side]);
    EXPECT_TRUE(t->v2[side]);
  }
}

TEST(PdfTest, FalsePathHasNoRobustTest) {
  // a & !a style contradiction: path needs s and !s noncontrolling.
  Network net("fp");
  const GateId s = net.add_input("s");
  const GateId a = net.add_input("a", 1.0);
  const GateId ns = net.add_gate(GateKind::kNot, {s}, 1.0);
  const GateId e1 = net.add_gate(GateKind::kAnd, {a, s}, 1.0);
  const GateId x1 = net.add_gate(GateKind::kAnd, {e1, ns}, 1.0);
  net.add_output("f", x1);
  PathEnumerator en(net);
  auto p = en.next();  // longest: a -> e1 -> x1
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->source, a);
  EXPECT_FALSE(robust_pdf_testable(net, *p));
}

TEST(PdfTest, CarrySkipLongestPathIsPdfRedundant) {
  // The false ripple path of the carry-skip adder has no robust delay
  // test either — the "speedtest" problem in delay-fault language.
  AdderOptions opts;
  opts.cin_arrival = 5.0;
  Network net = carry_skip_adder(2, 2, opts);
  Network cone = extract_output(net, net.outputs().size() - 1);
  decompose_to_simple(cone);
  PathEnumerator en(cone);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(robust_pdf_testable(cone, *p));
}

TEST(PdfTest, RippleAdderCarryChainRobustlyTestable) {
  Network net = ripple_carry_adder(3);
  decompose_to_simple(net);
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(robust_pdf_testable(net, *p));
}

TEST(PdfTest, AuditCountsConsistently) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const PdfAudit audit = pdf_audit(net, 50);
  EXPECT_EQ(audit.paths_examined, audit.robust_testable + audit.untestable);
  EXPECT_GT(audit.paths_examined, 0u);
}

TEST(PdfTest, KmsImprovesLongestPathTestability) {
  // After KMS the longest path is sensitizable; for the carry-skip
  // family it also becomes robustly delay-testable, so the clock can be
  // validated by a delay test — no speedtest needed.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  apply_unit_delays(net);
  kms_make_irredundant(net, {});
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(robust_pdf_testable(net, *p));
}

}  // namespace
}  // namespace kms
