#include "src/seq/seq_network.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

/// n-bit accumulator: state' = state + in (carry-skip adder core),
/// output = state.
SeqNetwork make_accumulator(std::size_t bits, std::size_t block) {
  // carry_skip_adder inputs: a0.., b0.., cin; outputs: s0.., cout.
  // Use a-inputs as the primary inputs, b-inputs as state; feed cin=0;
  // next state = sums; primary outputs = current state (b inputs).
  Network adder = carry_skip_adder(bits, block);
  decompose_to_simple(adder);
  apply_unit_delays(adder);

  Network core("accumulator");
  std::vector<GateId> ins, state;
  for (std::size_t i = 0; i < bits; ++i)
    ins.push_back(core.add_input("in" + std::to_string(i)));
  for (std::size_t i = 0; i < bits; ++i)
    state.push_back(core.add_input("q" + std::to_string(i)));
  // Rebuild the adder's gates inside `core`, mapping its PIs
  // (a0..,b0..,cin in generator order) onto in/state/constant-0.
  std::vector<GateId> map(adder.gate_capacity());
  for (std::size_t i = 0; i < bits; ++i) map[adder.inputs()[i].value()] = ins[i];
  for (std::size_t i = 0; i < bits; ++i)
    map[adder.inputs()[bits + i].value()] = state[i];
  map[adder.inputs()[2 * bits].value()] = core.const_gate(false);
  for (GateId g : adder.topo_order()) {
    const Gate& gt = adder.gate(g);
    if (gt.kind == GateKind::kInput || gt.kind == GateKind::kOutput) continue;
    if (gt.kind == GateKind::kConst0) {
      map[g.value()] = core.const_gate(false);
      continue;
    }
    if (gt.kind == GateKind::kConst1) {
      map[g.value()] = core.const_gate(true);
      continue;
    }
    std::vector<GateId> srcs;
    for (ConnId c : gt.fanins) srcs.push_back(map[adder.conn(c).from.value()]);
    map[g.value()] = core.add_gate(gt.kind, srcs, gt.delay, gt.name);
  }
  // Primary outputs: the current state bits.
  for (std::size_t i = 0; i < bits; ++i)
    core.add_output("out" + std::to_string(i), state[i]);
  // Latch data: the sums (adder outputs s0..).
  for (std::size_t i = 0; i < bits; ++i) {
    const GateId driver =
        map[adder.conn(adder.gate(adder.outputs()[i]).fanins[0]).from.value()];
    core.add_output("d" + std::to_string(i), driver);
  }
  simplify(core);
  return SeqNetwork(std::move(core), std::vector<bool>(bits, false));
}

TEST(SeqTest, AccumulatorAccumulates) {
  const std::size_t bits = 4;
  SeqNetwork acc = make_accumulator(bits, 2);
  // Feed 3, 5, 7: outputs show 0, 3, 8 (state before the add).
  auto vec = [&](unsigned v) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bits; ++i) in.push_back((v >> i) & 1);
    return in;
  };
  const auto outs = acc.simulate({vec(3), vec(5), vec(7)});
  auto value = [&](const std::vector<bool>& bitsv) {
    unsigned v = 0;
    for (std::size_t i = 0; i < bitsv.size(); ++i)
      if (bitsv[i]) v |= 1u << i;
    return v;
  };
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(value(outs[0]), 0u);
  EXPECT_EQ(value(outs[1]), 3u);
  EXPECT_EQ(value(outs[2]), 8u);
}

TEST(SeqTest, KmsPreservesBehaviourAndCycleTime) {
  SeqNetwork acc = make_accumulator(4, 2);
  SeqNetwork original = acc;
  const SeqKmsResult r = kms_on_sequential(acc);
  EXPECT_LE(r.cycle_after, r.cycle_before + 1e-9);
  EXPECT_TRUE(random_sequence_equiv(original, acc, 42, 512));
}

TEST(SeqTest, SequentialBlifRoundTrip) {
  SeqNetwork acc = make_accumulator(3, 3);
  std::ostringstream out;
  std::vector<bool> init;
  for (std::size_t i = 0; i < acc.num_latches(); ++i)
    init.push_back(acc.initial_state(i));
  write_blif_sequential(acc.comb(), acc.num_latches(), init, out);
  const BlifSequential back = read_blif_sequential_string(out.str());
  SeqNetwork loaded(back.comb, back.latch_init);
  EXPECT_EQ(loaded.num_latches(), acc.num_latches());
  EXPECT_EQ(loaded.num_primary_inputs(), acc.num_primary_inputs());
  EXPECT_TRUE(random_sequence_equiv(acc, loaded, 7, 256));
}

TEST(SeqTest, ReadBlifRejectsLatchesCombinational) {
  EXPECT_THROW(read_blif_string(".model l\n.inputs a\n.outputs f\n"
                                ".latch a q 0\n.names q f\n1 1\n.end\n"),
               BlifError);
}

TEST(SeqTest, ReadSequentialBlifDirectly) {
  const BlifSequential seq = read_blif_sequential_string(
      ".model toggler\n.inputs en\n.outputs out\n"
      ".latch next q 0\n"
      ".names en q next\n10 1\n01 1\n"  // next = en xor q
      ".names q out\n1 1\n.end\n");
  SeqNetwork machine(seq.comb, seq.latch_init);
  EXPECT_EQ(machine.num_latches(), 1u);
  // Toggle on every en=1 cycle.
  const auto outs =
      machine.simulate({{true}, {true}, {false}, {true}});
  EXPECT_FALSE(outs[0][0]);  // initial state 0
  EXPECT_TRUE(outs[1][0]);
  EXPECT_FALSE(outs[2][0]);  // toggled back by the second en=1
}

}  // namespace
}  // namespace kms
