#include "src/pla/pla.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/simulator.hpp"

namespace kms {
namespace {

const char kSmallPla[] = R"(
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 10
0-- 01
.e
)";

TEST(PlaTest, ReadSmall) {
  Pla pla = read_pla_string(kSmallPla);
  EXPECT_EQ(pla.num_inputs, 3u);
  EXPECT_EQ(pla.num_outputs, 2u);
  EXPECT_EQ(pla.cubes.size(), 3u);
  EXPECT_EQ(pla.check(), "");
}

TEST(PlaTest, RoundTrip) {
  Pla pla = read_pla_string(kSmallPla);
  std::ostringstream out;
  write_pla(pla, out);
  Pla back = read_pla_string(out.str());
  EXPECT_EQ(back.cubes.size(), pla.cubes.size());
  for (std::size_t i = 0; i < pla.cubes.size(); ++i) {
    EXPECT_EQ(back.cubes[i].in, pla.cubes[i].in);
    EXPECT_EQ(back.cubes[i].out, pla.cubes[i].out);
  }
}

TEST(PlaTest, NetworkMatchesCoverSemantics) {
  Pla pla = read_pla_string(kSmallPla);
  Network net = pla_to_network(pla);
  EXPECT_EQ(net.check(), "");
  // f = (a&b) | c, g = !a.
  EXPECT_TRUE(eval_once(net, {true, true, false})[0]);
  EXPECT_TRUE(eval_once(net, {false, false, true})[0]);
  EXPECT_FALSE(eval_once(net, {true, false, false})[0]);
  EXPECT_TRUE(eval_once(net, {false, true, false})[1]);
  EXPECT_FALSE(eval_once(net, {true, true, true})[1]);
}

TEST(PlaTest, SharedTermsAreNotDuplicated) {
  // Same cube used by both outputs: one AND gate.
  Pla pla;
  pla.num_inputs = 2;
  pla.num_outputs = 2;
  pla.cubes.push_back({"11", "11"});
  Network net = pla_to_network(pla);
  EXPECT_EQ(net.count_gates(), 1u);  // a single AND, no OR needed
}

TEST(PlaTest, RandomPlaIsDeterministic) {
  RandomPlaOptions opts;
  opts.seed = 99;
  Pla p1 = random_pla(opts);
  Pla p2 = random_pla(opts);
  ASSERT_EQ(p1.cubes.size(), p2.cubes.size());
  for (std::size_t i = 0; i < p1.cubes.size(); ++i) {
    EXPECT_EQ(p1.cubes[i].in, p2.cubes[i].in);
    EXPECT_EQ(p1.cubes[i].out, p2.cubes[i].out);
  }
  EXPECT_EQ(p1.check(), "");
}

TEST(PlaTest, SimplifyCoverPreservesFunction) {
  RandomPlaOptions opts;
  opts.inputs = 6;
  opts.outputs = 3;
  opts.cubes = 40;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    opts.seed = seed;
    Pla pla = random_pla(opts);
    Network before = pla_to_network(pla);
    Pla reduced = pla;
    simplify_cover(reduced);
    Network after = pla_to_network(reduced);
    EXPECT_LE(reduced.cubes.size(), pla.cubes.size());
    EXPECT_TRUE(exhaustive_equiv(before, after).equivalent)
        << "seed " << seed;
  }
}

TEST(PlaTest, SimplifyMergesDistanceOne) {
  Pla pla;
  pla.num_inputs = 2;
  pla.num_outputs = 1;
  pla.cubes.push_back({"10", "1"});
  pla.cubes.push_back({"11", "1"});
  EXPECT_EQ(simplify_cover(pla), 1u);
  ASSERT_EQ(pla.cubes.size(), 1u);
  EXPECT_EQ(pla.cubes[0].in, "1-");
}

TEST(PlaTest, SimplifyDropsContained) {
  Pla pla;
  pla.num_inputs = 3;
  pla.num_outputs = 1;
  pla.cubes.push_back({"1--", "1"});
  pla.cubes.push_back({"11-", "1"});  // contained in the first
  EXPECT_EQ(simplify_cover(pla), 1u);
  EXPECT_EQ(pla.cubes.size(), 1u);
}

TEST(PlaTest, ConstantOutputs) {
  Pla pla;
  pla.num_inputs = 2;
  pla.num_outputs = 2;
  pla.cubes.push_back({"--", "10"});  // f = 1 always, g never on
  Network net = pla_to_network(pla);
  EXPECT_TRUE(eval_once(net, {false, false})[0]);
  EXPECT_FALSE(eval_once(net, {true, true})[1]);
}

TEST(PlaTest, RejectsMalformed) {
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n111 1\n.e\n"), PlaError);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n1- x\n.e\n"), PlaError);
}

}  // namespace
}  // namespace kms
