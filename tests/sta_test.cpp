#include "src/timing/sta.hpp"

#include <gtest/gtest.h>

#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sensitize.hpp"

namespace kms {
namespace {

TEST(StaTest, ChainArrival) {
  Network net("c");
  const GateId a = net.add_input("a", 1.0);
  const GateId g1 = net.add_gate(GateKind::kNot, {a}, 2.0);
  net.conn(net.gate(g1).fanins[0]).delay = 0.5;
  const GateId g2 = net.add_gate(GateKind::kNot, {g1}, 3.0);
  net.add_output("f", g2);
  const auto arrival = compute_arrival(net);
  EXPECT_DOUBLE_EQ(arrival[a.value()], 1.0);
  EXPECT_DOUBLE_EQ(arrival[g1.value()], 3.5);
  EXPECT_DOUBLE_EQ(arrival[g2.value()], 6.5);
  EXPECT_DOUBLE_EQ(topological_delay(net), 6.5);
}

TEST(StaTest, MaxOverFanins) {
  Network net("m");
  const GateId a = net.add_input("a", 0.0);
  const GateId b = net.add_input("b", 10.0);
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  EXPECT_DOUBLE_EQ(topological_delay(net), 11.0);
}

TEST(StaTest, ConstantsDoNotConstrain) {
  Network net("k");
  const GateId a = net.add_input("a", 2.0);
  const GateId g =
      net.add_gate(GateKind::kAnd, {a, net.const_gate(true)}, 1.0);
  net.add_output("f", g);
  EXPECT_DOUBLE_EQ(topological_delay(net), 3.0);
}

TEST(StaTest, RequiredAndSlack) {
  Network net("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId g2 = net.add_gate(GateKind::kAnd, {g1, b}, 1.0);
  net.add_output("f", g2);
  const TimingTables t = compute_timing(net);
  EXPECT_DOUBLE_EQ(t.delay, 2.0);
  // The path through g1 is critical: slack 0 everywhere along it.
  EXPECT_DOUBLE_EQ(t.slack[a.value()], 0.0);
  EXPECT_DOUBLE_EQ(t.slack[g1.value()], 0.0);
  EXPECT_DOUBLE_EQ(t.slack[g2.value()], 0.0);
  // Input b has one unit of slack.
  EXPECT_DOUBLE_EQ(t.slack[b.value()], 1.0);
}

TEST(StaTest, CarrySkipFasterThanRipple) {
  // The whole point of the skip chain (unit-delay model): the *computed*
  // (sensitizable) delay drops. The topological delay does NOT — the
  // ripple chain is still present as a false path, which is exactly the
  // phenomenon the paper is about (see AddersTest for that direction).
  Network rca = ripple_carry_adder(8);
  Network csa = carry_skip_adder(8, 2);
  decompose_to_simple(rca);
  decompose_to_simple(csa);
  apply_unit_delays(rca);
  apply_unit_delays(csa);
  const double rca_true =
      computed_delay(rca, SensitizationMode::kStatic).delay;
  const double csa_true =
      computed_delay(csa, SensitizationMode::kStatic).delay;
  EXPECT_LT(csa_true, rca_true);
}

TEST(StaTest, UnitDelayModelCountsGates) {
  Network net("u");
  const GateId a = net.add_input("a");
  const GateId g1 = net.add_gate(GateKind::kNot, {a}, 7.0);
  const GateId g2 = net.add_gate(GateKind::kAnd, {g1, a}, 7.0);
  net.conn(net.gate(g2).fanins[0]).delay = 5.0;
  net.add_output("f", g2);
  apply_unit_delays(net);
  EXPECT_DOUBLE_EQ(topological_delay(net), 2.0);
}

}  // namespace
}  // namespace kms
