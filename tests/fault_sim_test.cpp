#include "src/atpg/fault_sim.hpp"

#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/atpg/inject.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

TEST(FaultSimTest, AgreesWithInjectionSimulation) {
  // For each fault and pattern word, the detection mask must equal the
  // brute-force comparison of good and injected circuits.
  RandomNetworkOptions opts;
  opts.seed = 90;
  opts.gates = 25;
  Network net = random_network(opts);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(4);
  std::vector<std::uint64_t> words(net.inputs().size());
  for (auto& w : words) w = rng.next_u64();
  const auto masks = sim.detect_words(faults, words);
  ASSERT_EQ(masks.size(), faults.size());

  for (std::size_t i = 0; i < faults.size(); ++i) {
    Network faulty = inject_fault(net, faults[i]);
    Simulator gs(net), fs(faulty);
    gs.run(words);
    fs.run(words);
    std::uint64_t expected = 0;
    for (std::size_t o = 0; o < net.outputs().size(); ++o)
      expected |= gs.output_word(o) ^ fs.output_word(o);
    EXPECT_EQ(masks[i], expected) << format_fault(net, faults[i]);
  }
}

TEST(FaultSimTest, DetectsEasyFaultsQuickly) {
  Network net = ripple_carry_adder(4);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(5);
  const auto detected = sim.detect_random(faults, 16, rng);
  std::size_t count = 0;
  for (bool d : detected)
    if (d) ++count;
  // Random patterns detect the overwhelming majority in an adder.
  EXPECT_GT(count, faults.size() * 8 / 10);
}

TEST(FaultSimTest, NeverDetectsRedundantFaults) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  Atpg atpg(net);
  FaultSimulator sim(net);
  Rng rng(6);
  const auto detected = sim.detect_random(faults, 32, rng);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i])
      EXPECT_TRUE(atpg.is_testable(faults[i]))
          << format_fault(net, faults[i]);
  }
}

TEST(FaultSimTest, CoverageOfAtpgTestSetIsComplete) {
  Network net = ripple_carry_adder(3);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  Atpg atpg(net);
  std::vector<std::vector<bool>> tests;
  for (const Fault& f : faults) {
    auto t = atpg.generate_test(f);
    if (t) tests.push_back(std::move(*t));
  }
  EXPECT_DOUBLE_EQ(fault_coverage(net, faults, tests), 1.0);
}

TEST(FaultSimTest, CoverageZeroWithNoTests) {
  Network net = ripple_carry_adder(2);
  const auto faults = collapsed_faults(net);
  EXPECT_DOUBLE_EQ(fault_coverage(net, faults, {}), 0.0);
}

}  // namespace
}  // namespace kms
