#include "src/netlist/transform.hpp"

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(TransformTest, DecomposeXorPreservesFunction) {
  Network net("x");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kXor, {a, b}, 2.0);
  net.add_output("f", x);
  Network orig = net;
  EXPECT_EQ(decompose_to_simple(net), 1u);
  EXPECT_EQ(net.check(), "");
  for (std::uint32_t i = 0; i < net.gate_capacity(); ++i) {
    const Gate& g = net.gate(GateId{i});
    if (!g.dead) EXPECT_TRUE(!is_logic(g.kind) || is_simple(g.kind));
  }
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
}

TEST(TransformTest, DecomposeXorPreservesPathLengths) {
  Network net("x");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kXor, {a, b}, 2.0);
  net.conn(net.gate(x).fanins[0]).delay = 0.5;
  net.add_output("f", x);
  const double before = topological_delay(net);
  decompose_to_simple(net);
  EXPECT_DOUBLE_EQ(topological_delay(net), before);
}

TEST(TransformTest, DecomposeMuxPreservesFunctionAndDelay) {
  Network net("m");
  const GateId s = net.add_input("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId m = net.add_gate(GateKind::kMux, {s, a, b}, 2.0);
  net.add_output("f", m);
  Network orig = net;
  const double before = topological_delay(net);
  decompose_to_simple(net);
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  EXPECT_DOUBLE_EQ(topological_delay(net), before);
}

TEST(TransformTest, DecomposeWideParity) {
  for (std::size_t n : {3u, 4u, 5u, 7u}) {
    Network net("wp");
    std::vector<GateId> ins;
    for (std::size_t i = 0; i < n; ++i)
      ins.push_back(net.add_input("x" + std::to_string(i)));
    const GateId x = net.add_gate(GateKind::kXor, ins, 2.0);
    const GateId xn = net.add_gate(GateKind::kXnor, ins, 2.0);
    net.add_output("p", x);
    net.add_output("np", xn);
    Network orig = net;
    decompose_to_simple(net);
    EXPECT_EQ(net.check(), "");
    EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  }
}

TEST(TransformTest, PropagateConstantsThroughAnd) {
  Network net("c");
  const GateId a = net.add_input("a");
  const GateId c0 = net.const_gate(false);
  const GateId g = net.add_gate(GateKind::kAnd, {a, c0}, 1.0);
  net.add_output("f", g);
  propagate_constants(net);
  EXPECT_EQ(net.gate(g).kind, GateKind::kConst0);
}

TEST(TransformTest, PropagateConstantsDropsNoncontrolling) {
  Network net("c");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c1 = net.const_gate(true);
  const GateId g = net.add_gate(GateKind::kAnd, {a, c1, b}, 1.0);
  net.add_output("f", g);
  propagate_constants(net);
  EXPECT_EQ(net.gate(g).kind, GateKind::kAnd);
  EXPECT_EQ(net.gate(g).fanins.size(), 2u);
}

TEST(TransformTest, WireConventionOnSingleInputAnd) {
  // AND(a, 1) must become a zero-delay buffer (Section VII convention).
  Network net("w");
  const GateId a = net.add_input("a");
  const GateId c1 = net.const_gate(true);
  const GateId g = net.add_gate(GateKind::kAnd, {a, c1}, 3.0);
  net.add_output("f", g);
  propagate_constants(net);
  EXPECT_EQ(net.gate(g).kind, GateKind::kBuf);
  EXPECT_DOUBLE_EQ(net.gate(g).delay, 0.0);
}

TEST(TransformTest, NandWithConstBecomesInverter) {
  Network net("w");
  const GateId a = net.add_input("a");
  const GateId c1 = net.const_gate(true);
  const GateId g = net.add_gate(GateKind::kNand, {a, c1}, 3.0);
  net.add_output("f", g);
  propagate_constants(net);
  EXPECT_EQ(net.gate(g).kind, GateKind::kNot);
  EXPECT_DOUBLE_EQ(net.gate(g).delay, 3.0);  // an inverter is not a wire
  EXPECT_FALSE(eval_once(net, {true})[0]);
  EXPECT_TRUE(eval_once(net, {false})[0]);
}

TEST(TransformTest, XorConstantFlipsPolarity) {
  Network net("x");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c1 = net.const_gate(true);
  const GateId g = net.add_gate(GateKind::kXor, {a, c1, b}, 1.0);
  net.add_output("f", g);
  propagate_constants(net);
  EXPECT_EQ(net.gate(g).kind, GateKind::kXnor);
  // f = !(a ^ b)
  EXPECT_TRUE(eval_once(net, {false, false})[0]);
  EXPECT_FALSE(eval_once(net, {true, false})[0]);
}

TEST(TransformTest, MuxConstantSelect) {
  Network net("m");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c1 = net.const_gate(true);
  const GateId m = net.add_gate(GateKind::kMux, {c1, a, b}, 2.0);
  net.add_output("f", m);
  propagate_constants(net);
  // Selects a.
  EXPECT_TRUE(eval_once(net, {true, false})[0]);
  EXPECT_FALSE(eval_once(net, {false, true})[0]);
}

TEST(TransformTest, MuxConstantDataBranches) {
  // mux(s, 1, b) = s | b;  mux(s, a, 0) = s & a;
  // mux(s, 0, b) = !s & b; mux(s, a, 1) = !s | a.
  for (int variant = 0; variant < 4; ++variant) {
    Network net("m");
    const GateId s = net.add_input("s");
    const GateId d = net.add_input("d");
    const bool data_is_a = variant < 2;
    const bool cval = (variant % 2) == 0;
    const GateId cg = net.const_gate(cval);
    const GateId m = data_is_a
                         ? net.add_gate(GateKind::kMux, {s, cg, d}, 2.0)
                         : net.add_gate(GateKind::kMux, {s, d, cg}, 2.0);
    net.add_output("f", m);
    Network orig = net;
    propagate_constants(net);
    EXPECT_EQ(net.check(), "");
    EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent)
        << "variant " << variant;
  }
}

TEST(TransformTest, CollapseBuffersFoldsDelay) {
  Network net("b");
  const GateId a = net.add_input("a");
  const GateId buf = net.add_gate(GateKind::kBuf, {a}, 1.5);
  net.conn(net.gate(buf).fanins[0]).delay = 0.5;
  const GateId g = net.add_gate(GateKind::kNot, {buf}, 1.0);
  net.add_output("f", g);
  const double before = topological_delay(net);
  EXPECT_EQ(collapse_buffers(net), 1u);
  EXPECT_EQ(net.check(), "");
  EXPECT_DOUBLE_EQ(topological_delay(net), before);
  EXPECT_EQ(net.count_gates(), 1u);
}

TEST(TransformTest, SimplifyIsIdempotent) {
  Network net("s");
  const GateId a = net.add_input("a");
  const GateId c1 = net.const_gate(true);
  const GateId g1 = net.add_gate(GateKind::kAnd, {a, c1}, 1.0);
  const GateId g2 = net.add_gate(GateKind::kOr, {g1, net.const_gate(false)},
                                 1.0);
  net.add_output("f", g2);
  simplify(net);
  const std::size_t gates = net.count_gates(true);
  simplify(net);
  EXPECT_EQ(net.count_gates(true), gates);
  EXPECT_EQ(net.check(), "");
  // f == a.
  EXPECT_TRUE(eval_once(net, {true})[0]);
  EXPECT_FALSE(eval_once(net, {false})[0]);
}

TEST(TransformTest, ExtractOutputKeepsOnlyOneCone) {
  Network net("e");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId g2 = net.add_gate(GateKind::kOr, {a, b}, 1.0);
  net.add_output("f0", g1);
  net.add_output("f1", g2);
  Network cone = extract_output(net, 1);
  EXPECT_EQ(cone.outputs().size(), 1u);
  EXPECT_EQ(cone.gate(cone.outputs()[0]).name, "f1");
  EXPECT_EQ(cone.count_gates(), 1u);
  EXPECT_EQ(cone.inputs().size(), 2u);  // PIs always kept
  EXPECT_EQ(cone.check(), "");
}

}  // namespace
}  // namespace kms
