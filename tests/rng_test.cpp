#include "src/base/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kms {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.25)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace kms
