// End-to-end test of the proof-carrying pipeline through the real
// binaries: kmscli irr --certify --emit-proof produces an artifact
// directory that kmsproof verifies, and corrupted artifacts — a
// tampered proof, a forged journal step, a swapped output netlist — are
// rejected with exit code 2.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"

#ifndef KMSCLI_PATH
#error "KMSCLI_PATH must be defined by the build"
#endif
#ifndef KMSPROOF_PATH
#error "KMSPROOF_PATH must be defined by the build"
#endif

namespace kms {
namespace {

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  // Per-process suffix: ctest runs each case as its own process, and a
  // parallel ctest (-j > 1) would otherwise have concurrent cases
  // clobbering each other's fixture files.
  return std::string(dir ? dir : "/tmp") + "/" + name + "." +
         std::to_string(getpid());
}

int exit_code(const std::string& cmd) {
  const int raw = std::system((cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Fixture: one certified run over a redundant carry-skip adder, with
/// the artifact directory recreated fresh for each corruption.
class KmsproofTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Network net = carry_skip_adder(3, 3);
    decompose_to_simple(net);
    in_path_ = temp_path("kmsproof_in.blif");
    out_path_ = temp_path("kmsproof_out.blif");
    dir_ = temp_path("kmsproof_artifacts");
    write_blif_file(net, in_path_);
    std::system(("rm -rf " + dir_).c_str());
    ASSERT_EQ(exit_code(std::string(KMSCLI_PATH) + " irr " + in_path_ +
                        " -o " + out_path_ + " --certify --emit-proof " +
                        dir_),
              0);
  }

  void TearDown() override {
    std::remove(in_path_.c_str());
    std::remove(out_path_.c_str());
    std::system(("rm -rf " + dir_).c_str());
  }

  int verify() { return exit_code(std::string(KMSPROOF_PATH) + " " + dir_); }

  std::string in_path_, out_path_, dir_;
};

TEST_F(KmsproofTest, EmittedArtifactsVerify) {
  EXPECT_EQ(verify(), 0);
}

TEST_F(KmsproofTest, SingleCertificatePairVerifies) {
  // The carry-skip adder has redundancies, so at least q0 exists.
  EXPECT_EQ(exit_code(std::string(KMSPROOF_PATH) + " --proof " + dir_ +
                      "/q0.cnf " + dir_ + "/q0.drat"),
            0);
}

TEST_F(KmsproofTest, RejectsTamperedCertificate) {
  // Gut the CNF: keep only the header. The journal's untestable-fault
  // steps now cite certificates whose conclusions have no support.
  spit(dir_ + "/q0.cnf", "p cnf 1 0\n");
  EXPECT_EQ(verify(), 2);
}

TEST_F(KmsproofTest, RejectsForgedJournalDeletion) {
  // Remove the untestable-fault verdicts: the deletions that cited them
  // become unproved claims.
  std::istringstream in(slurp(dir_ + "/journal.txt"));
  std::ostringstream out;
  std::string line;
  bool dropped = false;
  while (std::getline(in, line)) {
    if (line.rfind("step fault-untestable", 0) == 0) {
      dropped = true;
      continue;
    }
    out << line << "\n";
  }
  ASSERT_TRUE(dropped) << "run produced no untestable-fault steps";
  spit(dir_ + "/journal.txt", out.str());
  EXPECT_EQ(verify(), 2);
}

TEST_F(KmsproofTest, RejectsSwappedOutputNetlist) {
  spit(dir_ + "/output.blif",
       ".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n");
  EXPECT_EQ(verify(), 2);
}

TEST_F(KmsproofTest, RejectsJournalClaimingUnprovedDeletion) {
  // Redirect a delete step at a proof id that was never emitted.
  std::istringstream in(slurp(dir_ + "/journal.txt"));
  std::ostringstream out;
  std::string line;
  bool rewrote = false;
  while (std::getline(in, line)) {
    if (!rewrote && line.rfind("step delete proof=", 0) == 0) {
      const auto what = line.find(" what=");
      ASSERT_NE(what, std::string::npos);
      out << "step delete proof=9999" << line.substr(what) << "\n";
      rewrote = true;
      continue;
    }
    out << line << "\n";
  }
  ASSERT_TRUE(rewrote) << "run produced no delete steps";
  spit(dir_ + "/journal.txt", out.str());
  EXPECT_EQ(verify(), 2);
}

TEST_F(KmsproofTest, UsageErrorsExitOne) {
  EXPECT_EQ(exit_code(std::string(KMSPROOF_PATH)), 1);
  EXPECT_EQ(exit_code(std::string(KMSPROOF_PATH) + " --bogus"), 1);
}

TEST_F(KmsproofTest, MissingDirectoryRejected) {
  EXPECT_EQ(exit_code(std::string(KMSPROOF_PATH) + " " +
                      temp_path("kmsproof_no_such_dir")),
            2);
}

}  // namespace
}  // namespace kms
