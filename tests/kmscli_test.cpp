// End-to-end test of the kmscli tool: drives the real binary through
// the BLIF-in / BLIF-out flow a downstream user would script.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/atpg/atpg.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"

#ifndef KMSCLI_PATH
#error "KMSCLI_PATH must be defined by the build"
#endif

namespace kms {
namespace {

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

int run_cli(const std::string& args) {
  const std::string cmd = std::string(KMSCLI_PATH) + " " + args;
  return std::system(cmd.c_str());
}

TEST(KmscliTest, UsageErrorOnNoArgs) {
  EXPECT_NE(run_cli("") & 0xFF00, 0);  // nonzero exit
}

TEST(KmscliTest, IrrProducesEquivalentIrredundantBlif) {
  // Prepare a redundant circuit on disk.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_in.blif");
  const std::string out_path = temp_path("kmscli_out.blif");
  write_blif_file(net, in_path);

  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path + " 2>/dev/null"),
            0);

  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  EXPECT_EQ(count_redundancies(result), 0u);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, ViabilityModeAccepted) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_v.blif");
  const std::string out_path = temp_path("kmscli_v_out.blif");
  write_blif_file(net, in_path);
  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path +
                    " --mode viability 2>/dev/null"),
            0);
  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, StatsAndDelayAndAuditRun) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_s.blif");
  write_blif_file(net, in_path);
  EXPECT_EQ(run_cli("stats " + in_path + " >/dev/null"), 0);
  EXPECT_EQ(run_cli("delay " + in_path + " >/dev/null"), 0);
  EXPECT_EQ(run_cli("audit " + in_path + " >/dev/null"), 0);
  std::remove(in_path.c_str());
}

TEST(KmscliTest, CheckFlagStaysCleanThroughIrr) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_chk.blif");
  const std::string out_path = temp_path("kmscli_chk_out.blif");
  write_blif_file(net, in_path);
  // --check runs the invariant checker on the input and after each
  // transform stage; a clean run must still exit 0.
  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path +
                    " --check 2>/dev/null"),
            0);
  EXPECT_EQ(run_cli("stats " + in_path + " --check >/dev/null 2>&1"), 0);
  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, MissingFileFails) {
  EXPECT_NE(run_cli("stats /nonexistent.blif 2>/dev/null") & 0xFF00, 0);
}

}  // namespace
}  // namespace kms
