// End-to-end test of the kmscli tool: drives the real binary through
// the BLIF-in / BLIF-out flow a downstream user would script.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/atpg/atpg.hpp"
#include "src/cnf/encoder.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"

#ifndef KMSCLI_PATH
#error "KMSCLI_PATH must be defined by the build"
#endif

namespace kms {
namespace {

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

int run_cli(const std::string& args) {
  const std::string cmd = std::string(KMSCLI_PATH) + " " + args;
  return std::system(cmd.c_str());
}

/// Like run_cli but returns the tool's actual exit code (0..255).
int run_cli_status(const std::string& args) {
  const int raw = run_cli(args);
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

TEST(KmscliTest, UsageErrorOnNoArgs) {
  EXPECT_NE(run_cli("") & 0xFF00, 0);  // nonzero exit
}

TEST(KmscliTest, IrrProducesEquivalentIrredundantBlif) {
  // Prepare a redundant circuit on disk.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_in.blif");
  const std::string out_path = temp_path("kmscli_out.blif");
  write_blif_file(net, in_path);

  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path + " 2>/dev/null"),
            0);

  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  EXPECT_EQ(count_redundancies(result), 0u);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, ViabilityModeAccepted) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_v.blif");
  const std::string out_path = temp_path("kmscli_v_out.blif");
  write_blif_file(net, in_path);
  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path +
                    " --mode viability 2>/dev/null"),
            0);
  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, StatsAndDelayAndAuditRun) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_s.blif");
  write_blif_file(net, in_path);
  EXPECT_EQ(run_cli("stats " + in_path + " >/dev/null"), 0);
  EXPECT_EQ(run_cli("delay " + in_path + " >/dev/null"), 0);
  EXPECT_EQ(run_cli("audit " + in_path + " >/dev/null"), 0);
  std::remove(in_path.c_str());
}

TEST(KmscliTest, CheckFlagStaysCleanThroughIrr) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_chk.blif");
  const std::string out_path = temp_path("kmscli_chk_out.blif");
  write_blif_file(net, in_path);
  // --check runs the invariant checker on the input and after each
  // transform stage; a clean run must still exit 0.
  ASSERT_EQ(run_cli("irr " + in_path + " -o " + out_path +
                    " --check 2>/dev/null"),
            0);
  EXPECT_EQ(run_cli("stats " + in_path + " --check >/dev/null 2>&1"), 0);
  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, MissingFileFails) {
  EXPECT_NE(run_cli("stats /nonexistent.blif 2>/dev/null") & 0xFF00, 0);
}

TEST(KmscliTest, BadLimitArgumentsAreUsageErrors) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_lim.blif");
  write_blif_file(net, in_path);
  EXPECT_EQ(run_cli_status("irr " + in_path +
                           " --time-limit 0 >/dev/null 2>&1"), 1);
  EXPECT_EQ(run_cli_status("irr " + in_path +
                           " --time-limit abc >/dev/null 2>&1"), 1);
  EXPECT_EQ(run_cli_status("irr " + in_path +
                           " --conflict-limit -1 >/dev/null 2>&1"), 1);
  std::remove(in_path.c_str());
}

TEST(KmscliTest, ZeroConflictBudgetDegradesButStaysEquivalent) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  ASSERT_GT(count_redundancies(net), 0u);
  const std::string in_path = temp_path("kmscli_cb.blif");
  const std::string out_path = temp_path("kmscli_cb_out.blif");
  write_blif_file(net, in_path);

  // No SAT verdict can be reached: exit 3 (degraded), output written,
  // nothing deleted — the redundancies are still there, the function
  // unchanged.
  EXPECT_EQ(run_cli_status("irr " + in_path + " -o " + out_path +
                           " --conflict-limit 0 2>/dev/null"),
            3);
  Network result = read_blif_file(out_path);
  EXPECT_TRUE(exhaustive_equiv(net, result).equivalent);
  EXPECT_GT(count_redundancies(result), 0u);

  // audit under the same budget: inconclusive, exit 3, no crash.
  EXPECT_EQ(run_cli_status("audit " + in_path +
                           " --conflict-limit 0 >/dev/null 2>&1"),
            3);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, TimeLimitHonoredWithValidPartialOutput) {
  // Large enough that the KMS loop cannot finish in 0.3 s; the deadline
  // must stop it mid-flight with an equivalent partial network.
  Network net = carry_skip_adder(32, 4);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_tl.blif");
  const std::string out_path = temp_path("kmscli_tl_out.blif");
  write_blif_file(net, in_path);

  const auto t0 = std::chrono::steady_clock::now();
  const int status = run_cli_status("irr " + in_path + " -o " + out_path +
                                    " --time-limit 0.3 2>/dev/null");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(status, 3);
  // Acceptance bound is limit+10% on the tool's own clock; allow slack
  // here for process spawn, BLIF IO and the final equivalence queries.
  EXPECT_LT(elapsed, 5.0);

  Network result = read_blif_file(out_path);
  EXPECT_TRUE(sat_equivalent(net, result));  // 65 inputs: SAT, not sim
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(KmscliTest, SigintStopsGracefullyWithEquivalentOutput) {
  Network net = carry_skip_adder(32, 4);
  decompose_to_simple(net);
  const std::string in_path = temp_path("kmscli_sig.blif");
  const std::string out_path = temp_path("kmscli_sig_out.blif");
  write_blif_file(net, in_path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: run the tool with stderr silenced.
    std::freopen("/dev/null", "w", stderr);
    execl(KMSCLI_PATH, "kmscli", "irr", in_path.c_str(), "-o",
          out_path.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  usleep(300 * 1000);  // let it get into the KMS loop
  ASSERT_EQ(kill(pid, SIGINT), 0);
  int raw = 0;
  ASSERT_EQ(waitpid(pid, &raw, 0), pid);
  ASSERT_TRUE(WIFEXITED(raw));
  // 3 = interrupted mid-run (the expected case); 0 would mean the run
  // finished before the signal landed — legal, but the output contract
  // below must hold either way.
  EXPECT_TRUE(WEXITSTATUS(raw) == 3 || WEXITSTATUS(raw) == 0)
      << "exit " << WEXITSTATUS(raw);

  Network result = read_blif_file(out_path);
  EXPECT_TRUE(sat_equivalent(net, result));
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace kms
