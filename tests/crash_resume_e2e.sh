#!/usr/bin/env bash
# Real-process crash/resume end-to-end test (ctest label: crash).
#
# Part 1 — deterministic kill points: KMS_CRASH_AT=<n> makes kmscli die
# with exit 137 (std::_Exit, no unwinding — a faithful SIGKILL stand-in)
# at the n-th durability boundary. For every n until a run completes:
# crash, resume with `kmscli irr --resume`, and require the output BLIF
# and journal to be byte-identical to an uninterrupted reference run,
# with artifacts that kmsproof accepts as one logical run. Crashes that
# predate the first committed WAL record have nothing to resume: the
# CLI must refuse with a precise error and a fresh restart must match.
#
# Part 2 — a genuine `kill -9` against a larger input, then resume. The
# kill races the run; when the run wins, the completed output must still
# match (the fallback keeps the test deterministic on any machine).
set -u

KMSCLI="$1"
KMSPROOF="$2"
EXAMPLES="$3"

WORK="${TMPDIR:-/tmp}/crash_resume_e2e.$$"
rm -rf "$WORK"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

IN="$EXAMPLES/statred.blif"
REF_DIR="$WORK/ref"
REF_OUT="$WORK/ref.blif"
"$KMSCLI" irr "$IN" -o "$REF_OUT" --emit-proof "$REF_DIR" \
  --checkpoint-every 1 >/dev/null 2>&1 || fail "reference run failed"
"$KMSPROOF" "$REF_DIR" >/dev/null 2>&1 \
  || fail "reference artifacts do not verify"

# ---- Part 1: crash at every deterministic kill point ----------------
n=1
while :; do
  DIR="$WORK/c$n"
  OUT="$WORK/out$n.blif"
  rm -rf "$DIR"
  KMS_CRASH_AT=$n "$KMSCLI" irr "$IN" -o "$OUT" --emit-proof "$DIR" \
    --checkpoint-every 1 >/dev/null 2>&1
  code=$?
  if [ "$code" -eq 0 ]; then
    cmp -s "$OUT" "$REF_OUT" || fail "uncrashed run at n=$n differs"
    break
  fi
  [ "$code" -eq 137 ] || fail "crash at n=$n exited $code, expected 137"
  if "$KMSCLI" irr --resume "$DIR" -o "$OUT" >/dev/null 2>"$WORK/err$n"; then
    cmp -s "$OUT" "$REF_OUT" || fail "resume after crash at n=$n differs"
    cmp -s "$DIR/journal.txt" "$REF_DIR/journal.txt" \
      || fail "journal after crash at n=$n differs"
    # The audit must accept the resumed session as one logical run.
    "$KMSPROOF" "$DIR" >/dev/null 2>&1 \
      || fail "artifacts after crash at n=$n rejected"
  elif [ -f "$DIR/journal.txt" ]; then
    # The kill landed after the final record was durable: the session is
    # complete; resume must say so precisely and the finalized artifacts
    # must already stand on their own.
    grep -q "nothing to resume" "$WORK/err$n" \
      || fail "wrong refusal for completed session at n=$n: $(cat "$WORK/err$n")"
    cmp -s "$DIR/output.blif" "$REF_OUT" \
      || fail "completed-session output at n=$n differs"
    cmp -s "$DIR/journal.txt" "$REF_DIR/journal.txt" \
      || fail "completed-session journal at n=$n differs"
    "$KMSPROOF" "$DIR" >/dev/null 2>&1 \
      || fail "completed-session artifacts at n=$n rejected"
  else
    # Refusal with no journal is only legitimate before the first
    # committed record, and must come with kmsproof calling a logged
    # directory a crashed session rather than a forgery.
    if [ -f "$DIR/wal.log" ]; then
      "$KMSPROOF" "$DIR" 2>&1 | grep -q "crashed session" \
        || fail "kmsproof did not flag the crashed session at n=$n"
    fi
    rm -rf "$DIR"
    "$KMSCLI" irr "$IN" -o "$OUT" --emit-proof "$DIR" \
      --checkpoint-every 1 >/dev/null 2>&1 \
      || fail "restart after crash at n=$n failed"
    cmp -s "$OUT" "$REF_OUT" || fail "restart after crash at n=$n differs"
  fi
  n=$((n + 1))
  [ "$n" -le 500 ] || fail "kill-point sweep did not terminate"
done
echo "deterministic sweep: $n crash schedules checked"

# ---- Part 2: genuine SIGKILL against a larger redundant circuit -----
# Forty statred-style cones (y_i = a_i AND (a_i AND b_i)): each redundant
# branch is removed one pass at a time, so the run is long enough for the
# kill to land mid-flight on most machines.
BIG="$WORK/big.blif"
{
  echo ".model bigred"
  ins=""
  outs=""
  for i in $(seq 0 39); do
    ins="$ins a$i b$i"
    outs="$outs y$i"
  done
  echo ".inputs$ins"
  echo ".outputs$outs"
  for i in $(seq 0 39); do
    printf '.names a%s b%s x%s\n11 1\n' "$i" "$i" "$i"
    printf '.names a%s x%s y%s\n11 1\n' "$i" "$i" "$i"
  done
  echo ".end"
} > "$BIG"

BIG_REF_DIR="$WORK/bigref"
BIG_REF_OUT="$WORK/bigref.blif"
"$KMSCLI" irr "$BIG" -o "$BIG_REF_OUT" --emit-proof "$BIG_REF_DIR" \
  --checkpoint-every 1 >/dev/null 2>&1 || fail "big reference run failed"

DIR="$WORK/sigkill"
OUT="$WORK/sigkill.blif"
killed=0
resumed=0
for attempt in 1 2 3 4 5; do
  rm -rf "$DIR"
  "$KMSCLI" irr "$BIG" -o "$OUT" --emit-proof "$DIR" \
    --checkpoint-every 1 >/dev/null 2>&1 &
  pid=$!
  sleep 0.0$attempt
  if kill -9 "$pid" 2>/dev/null; then killed=$((killed + 1)); fi
  wait "$pid" 2>/dev/null
  if [ -f "$DIR/journal.txt" ]; then
    # The run finalized before the kill landed (the -o copy may still
    # have been cut off, so judge the durable artifact instead).
    cmp -s "$DIR/output.blif" "$BIG_REF_OUT" \
      || fail "completed SIGKILL-race run differs"
    continue
  fi
  if "$KMSCLI" irr --resume "$DIR" -o "$OUT" >/dev/null 2>&1; then
    resumed=$((resumed + 1))
    cmp -s "$OUT" "$BIG_REF_OUT" || fail "resume after SIGKILL differs"
    cmp -s "$DIR/journal.txt" "$BIG_REF_DIR/journal.txt" \
      || fail "journal after SIGKILL differs"
    "$KMSPROOF" "$DIR" >/dev/null 2>&1 \
      || fail "artifacts after SIGKILL rejected"
  fi
  # A refusal means the kill predated the first committed record —
  # nothing on disk to check, which is itself the correct behaviour.
done
echo "SIGKILL e2e: ok ($killed kills landed, $resumed resumes verified)"
exit 0
