// End-to-end flows across the whole stack: generators -> optimizers ->
// KMS -> ATPG verification, and the BLIF user journey.
#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/opt/opt.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(IntegrationTest, KmsBeatsNaiveRemovalOnCarrySkip) {
  // The paper's headline comparison, end to end, on csa 8.2 (4 blocks
  // of 2 — enough blocks that the skip chain genuinely shortens the
  // sensitizable delay).
  Network kms_net = carry_skip_adder(8, 2);
  decompose_to_simple(kms_net);
  apply_unit_delays(kms_net);
  Network naive_net = kms_net;
  Network orig = kms_net;

  const double original_speed =
      computed_delay(kms_net, SensitizationMode::kStatic).delay;

  const KmsStats stats = kms_make_irredundant(kms_net, {});
  remove_redundancies(naive_net);

  // Both are irredundant and correct ...
  EXPECT_EQ(count_redundancies(kms_net), 0u);
  EXPECT_EQ(count_redundancies(naive_net), 0u);
  EXPECT_TRUE(sat_equivalent(orig, kms_net));
  EXPECT_TRUE(sat_equivalent(orig, naive_net));

  // ... but only KMS kept the speed.
  const double kms_speed =
      computed_delay(kms_net, SensitizationMode::kStatic).delay;
  const double naive_speed =
      computed_delay(naive_net, SensitizationMode::kStatic).delay;
  EXPECT_LE(kms_speed, original_speed + 1e-9);
  EXPECT_GT(naive_speed, original_speed);
  EXPECT_LT(kms_speed, naive_speed);
  EXPECT_LE(stats.final_computed_delay, stats.initial_computed_delay + 1e-9);
}

TEST(IntegrationTest, BlifUserJourney) {
  // Write a redundant circuit to BLIF, read it back, run the full
  // algorithm, verify with ATPG + fault simulation.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  const std::string blif = write_blif_string(net);
  Network loaded = read_blif_string(blif);
  Network orig = loaded;

  kms_make_irredundant(loaded, {});
  EXPECT_TRUE(exhaustive_equiv(orig, loaded).equivalent);

  // Full ATPG: every collapsed fault has a test; the resulting test set
  // achieves 100% coverage in fault simulation.
  const auto faults = collapsed_faults(loaded);
  Atpg atpg(loaded);
  std::vector<std::vector<bool>> tests;
  for (const Fault& f : faults) {
    auto t = atpg.generate_test(f);
    ASSERT_TRUE(t.has_value()) << format_fault(loaded, f);
    tests.push_back(std::move(*t));
  }
  EXPECT_DOUBLE_EQ(fault_coverage(loaded, faults, tests), 1.0);
}

TEST(IntegrationTest, SuitePipelineEndToEnd) {
  // One representative Table-I-substitute circuit through the full flow.
  Network net = build_suite_circuit(suite_spec("smisex1"));
  Network orig = net;
  const double before =
      computed_delay(net, SensitizationMode::kStatic).delay;
  const KmsStats stats = kms_make_irredundant(net, {});
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(sat_equivalent(orig, net));
  EXPECT_EQ(count_redundancies(net), 0u);
  EXPECT_LE(stats.final_computed_delay, before + 1e-9);
}

TEST(IntegrationTest, SequentialStyleUsage) {
  // Section I: "This algorithm may be generalized to sequential circuits
  // by extracting the combinational portion from the sequential circuit
  // since the cycle time ... is determined by the delay of the
  // combinational portions between latches." Emulate two register-bound
  // combinational slabs and run the algorithm on each independently;
  // the composed cycle time (max of slab delays) must not increase.
  Network slab1 = carry_skip_adder(4, 2);
  Network slab2 = carry_skip_adder(4, 4);
  decompose_to_simple(slab1);
  decompose_to_simple(slab2);
  apply_unit_delays(slab1);
  apply_unit_delays(slab2);
  const double cycle_before =
      std::max(computed_delay(slab1, SensitizationMode::kStatic).delay,
               computed_delay(slab2, SensitizationMode::kStatic).delay);
  Network o1 = slab1, o2 = slab2;
  kms_make_irredundant(slab1, {});
  kms_make_irredundant(slab2, {});
  const double cycle_after =
      std::max(computed_delay(slab1, SensitizationMode::kStatic).delay,
               computed_delay(slab2, SensitizationMode::kStatic).delay);
  EXPECT_LE(cycle_after, cycle_before + 1e-9);
  EXPECT_TRUE(exhaustive_equiv(o1, slab1).equivalent);
  EXPECT_TRUE(exhaustive_equiv(o2, slab2).equivalent);
  EXPECT_EQ(count_redundancies(slab1), 0u);
  EXPECT_EQ(count_redundancies(slab2), 0u);
}

}  // namespace
}  // namespace kms
