// Soundness of structural fault collapsing: every fault in the full
// list must have the same testability status as its surviving
// representative — verified from first principles by fault injection
// and exhaustive equivalence on small circuits.
#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/atpg/inject.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

/// Ground truth: a fault is testable iff the injected machine differs
/// from the good machine on some input (exhaustive check).
bool truly_testable(const Network& net, const Fault& f) {
  Network faulty = inject_fault(net, f);
  return !exhaustive_equiv(net, faulty).equivalent;
}

class CollapseSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CollapseSoundness, AtpgAgreesWithGroundTruthOnAllFaults) {
  RandomNetworkOptions opts;
  opts.seed = 9000 + static_cast<std::uint64_t>(GetParam());
  opts.inputs = 6;
  opts.gates = 18;
  Network net = random_network(opts);
  Atpg atpg(net);
  for (const Fault& f : enumerate_faults(net)) {
    EXPECT_EQ(atpg.is_testable(f), truly_testable(net, f))
        << format_fault(net, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseSoundness, ::testing::Range(0, 6));

TEST(CollapseSoundnessTest, CollapsedCoverageEqualsFullCoverage) {
  // A test set detecting every collapsed fault must detect every fault
  // of the full list too (collapsing must not hide anything).
  for (std::uint64_t seed = 9100; seed < 9104; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.inputs = 6;
    opts.gates = 16;
    Network net = random_network(opts);
    Atpg atpg(net);
    std::size_t full_testable = 0, collapsed_testable = 0;
    for (const Fault& f : enumerate_faults(net))
      if (atpg.is_testable(f)) ++full_testable;
    for (const Fault& f : collapsed_faults(net))
      if (atpg.is_testable(f)) ++collapsed_testable;
    // Per collapsing soundness a class is testable iff its
    // representative is; if the collapsed list is fully testable, the
    // full list must be too.
    if (collapsed_testable == collapsed_faults(net).size()) {
      EXPECT_EQ(full_testable, enumerate_faults(net).size()) << seed;
    }
  }
}

TEST(CollapseSoundnessTest, CarrySkipEquivalenceClassesConsistent) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  Atpg atpg(net);
  // Every fault of the FULL list must agree with ground truth, so the
  // two known redundancies are found regardless of collapsing.
  std::size_t untestable = 0;
  for (const Fault& f : enumerate_faults(net))
    if (!atpg.is_testable(f)) ++untestable;
  // The two redundant classes cover at least two raw faults.
  EXPECT_GE(untestable, 2u);
  // And the collapsed count matches Table I exactly.
  EXPECT_EQ(count_redundancies(net), 2u);
}

}  // namespace
}  // namespace kms
