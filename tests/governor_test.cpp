// ResourceGovernor + three-valued solver contract: budgets, deadlines,
// cooperative interrupts and injected faults must all surface as
// kUnknown — never as a spurious kSat/kUnsat — and accounting must hold
// across many solvers sharing one governor.
#include "src/base/governor.hpp"

#include <gtest/gtest.h>

#include "src/cnf/encoder.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/sat/solver.hpp"

namespace kms {
namespace {

using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

/// Pigeonhole principle php(n): n+1 pigeons, n holes — UNSAT, and hard
/// for CDCL (exponential resolution lower bound), so it reliably burns
/// through small conflict budgets.
void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (int i = 0; i < pigeons; ++i)
    for (int j = 0; j < holes; ++j) p[i][j] = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < holes; ++j) clause.push_back(sat::mk_lit(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < holes; ++j)
    for (int i = 0; i < pigeons; ++i)
      for (int k = i + 1; k < pigeons; ++k)
        s.add_clause(sat::mk_lit(p[i][j], true), sat::mk_lit(p[k][j], true));
}

TEST(GovernorTest, UnlimitedGovernorNeverStops) {
  ResourceGovernor gov;
  EXPECT_FALSE(gov.should_stop());
  gov.charge(1000000, 1000000);
  EXPECT_FALSE(gov.should_stop());
  EXPECT_FALSE(gov.report().degraded());
}

TEST(GovernorTest, GlobalConflictBudgetYieldsUnknown) {
  ResourceGovernor gov;
  gov.set_conflict_limit(20);
  Solver s;
  s.set_governor(&gov);
  add_pigeonhole(s, 8);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  const GovernorReport r = gov.report();
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_GE(r.conflicts, 20u);
  EXPECT_EQ(r.unknown_results, 1u);
  EXPECT_TRUE(r.degraded());
}

TEST(GovernorTest, BudgetSpansSolversSharingTheGovernor) {
  // The budget is global: once solver A exhausts it, solver B must give
  // up immediately even on a trivial instance.
  ResourceGovernor gov;
  gov.set_conflict_limit(20);
  Solver a;
  a.set_governor(&gov);
  add_pigeonhole(a, 8);
  EXPECT_EQ(a.solve(), Result::kUnknown);

  Solver b;
  b.set_governor(&gov);
  const Var v = b.new_var();
  b.add_clause(sat::mk_lit(v));
  EXPECT_EQ(b.solve(), Result::kUnknown);
  EXPECT_EQ(gov.report().unknown_results, 2u);
}

TEST(GovernorTest, PerSolveConflictBudgetIsPerSolve) {
  // Solver-local budget: each solve gets the full allowance again, so
  // an incremental solver is not starved by its own history.
  Solver s;
  add_pigeonhole(s, 8);
  const Var extra = s.new_var();
  s.add_clause(sat::mk_lit(extra));
  s.set_conflict_budget(15);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_EQ(s.solve(), Result::kUnknown);  // fresh 15, not already spent
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::kUnsat);  // unlimited: the real verdict
}

TEST(GovernorTest, ExpiredDeadlineStopsBeforeAnyWork) {
  ResourceGovernor gov;
  gov.set_time_limit(1e-9);  // already in the past by the first probe
  Solver s;
  s.set_governor(&gov);
  const Var v = s.new_var();
  s.add_clause(sat::mk_lit(v));
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_TRUE(gov.report().deadline_hit);
}

TEST(GovernorTest, InterruptStopsSolvesAndIsSticky) {
  ResourceGovernor gov;
  Solver s;
  s.set_governor(&gov);
  const Var v = s.new_var();
  s.add_clause(sat::mk_lit(v));
  EXPECT_EQ(s.solve(), Result::kSat);
  gov.request_interrupt();
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_TRUE(gov.report().interrupted);
}

TEST(GovernorTest, InjectorAbortsExactlyTheScheduledQueries) {
  ResourceGovernor gov;
  gov.set_injector(FaultInjector::at_indices({0, 2}));
  Solver s;
  s.set_governor(&gov);
  const Var v = s.new_var();
  s.add_clause(sat::mk_lit(v));
  EXPECT_EQ(s.solve(), Result::kUnknown);  // query 0: injected
  EXPECT_EQ(s.solve(), Result::kSat);      // query 1: normal
  EXPECT_EQ(s.solve(), Result::kUnknown);  // query 2: injected
  EXPECT_EQ(s.solve(), Result::kSat);      // query 3: normal
  const GovernorReport r = gov.report();
  EXPECT_EQ(r.injected_aborts, 2u);
  EXPECT_EQ(r.unknown_results, 2u);
  EXPECT_EQ(r.queries, 4u);
}

TEST(GovernorTest, RandomInjectorIsDeterministicInSeedAndIndex) {
  const FaultInjector a = FaultInjector::random(42, 0.5);
  const FaultInjector b = FaultInjector::random(42, 0.5);
  int aborts = 0;
  for (std::uint64_t q = 0; q < 1000; ++q) {
    EXPECT_EQ(a.should_abort(q), b.should_abort(q));
    if (a.should_abort(q)) ++aborts;
  }
  EXPECT_GT(aborts, 350);  // ~500 expected; loose bounds, zero flakiness
  EXPECT_LT(aborts, 650);
  EXPECT_TRUE(FaultInjector::random(7, 1.0).should_abort(123));
  EXPECT_FALSE(FaultInjector::random(7, 0.0).should_abort(123));
}

TEST(GovernorTest, GovernedEquivalenceCheckDegradesToUnknown) {
  Network a = carry_skip_adder(2, 2);
  decompose_to_simple(a);
  Network b = a;

  ResourceGovernor fresh;
  EXPECT_EQ(check_equivalence(a, b, nullptr, &fresh), Result::kUnsat);

  ResourceGovernor spent;
  spent.set_conflict_limit(0);
  EXPECT_EQ(check_equivalence(a, b, nullptr, &spent), Result::kUnknown);

  // Ungoverned remains exact.
  EXPECT_TRUE(sat_equivalent(a, b));
}

}  // namespace
}  // namespace kms
