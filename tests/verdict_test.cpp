// Exhaustive table test for src/core/verdict.hpp — every cell of the
// three-valued mapping is pinned, so no future edit can silently turn
// "unknown" into a deletion licence.
#include "src/core/verdict.hpp"

#include <gtest/gtest.h>

#include <string>

namespace kms {
namespace {

TEST(VerdictTest, SatResultToTestOutcomeTable) {
  EXPECT_EQ(test_outcome_of(sat::Result::kSat), TestOutcome::kTestable);
  EXPECT_EQ(test_outcome_of(sat::Result::kUnsat), TestOutcome::kUntestable);
  EXPECT_EQ(test_outcome_of(sat::Result::kUnknown), TestOutcome::kUnknown);
}

TEST(VerdictTest, TestOutcomeToSatResultTable) {
  EXPECT_EQ(sat_result_of(TestOutcome::kTestable), sat::Result::kSat);
  EXPECT_EQ(sat_result_of(TestOutcome::kUntestable), sat::Result::kUnsat);
  EXPECT_EQ(sat_result_of(TestOutcome::kUnknown), sat::Result::kUnknown);
}

TEST(VerdictTest, MappingsAreInverse) {
  for (const sat::Result r :
       {sat::Result::kSat, sat::Result::kUnsat, sat::Result::kUnknown})
    EXPECT_EQ(sat_result_of(test_outcome_of(r)), r);
  for (const TestOutcome o : {TestOutcome::kTestable, TestOutcome::kUntestable,
                              TestOutcome::kUnknown})
    EXPECT_EQ(test_outcome_of(sat_result_of(o)), o);
}

TEST(VerdictTest, DecidednessTable) {
  EXPECT_TRUE(is_decided(sat::Result::kSat));
  EXPECT_TRUE(is_decided(sat::Result::kUnsat));
  EXPECT_FALSE(is_decided(sat::Result::kUnknown));
  EXPECT_TRUE(is_decided(TestOutcome::kTestable));
  EXPECT_TRUE(is_decided(TestOutcome::kUntestable));
  EXPECT_FALSE(is_decided(TestOutcome::kUnknown));
}

TEST(VerdictTest, OnlyUnsatProvesUntestable) {
  EXPECT_FALSE(proves_untestable(sat::Result::kSat));
  EXPECT_TRUE(proves_untestable(sat::Result::kUnsat));
  EXPECT_FALSE(proves_untestable(sat::Result::kUnknown));
  EXPECT_FALSE(proves_untestable(TestOutcome::kTestable));
  EXPECT_TRUE(proves_untestable(TestOutcome::kUntestable));
  EXPECT_FALSE(proves_untestable(TestOutcome::kUnknown));
}

TEST(VerdictTest, NamesAreStable) {
  EXPECT_EQ(std::string(verdict_name(sat::Result::kSat)), "sat");
  EXPECT_EQ(std::string(verdict_name(sat::Result::kUnsat)), "unsat");
  EXPECT_EQ(std::string(verdict_name(sat::Result::kUnknown)), "unknown");
  EXPECT_EQ(std::string(verdict_name(TestOutcome::kTestable)), "testable");
  EXPECT_EQ(std::string(verdict_name(TestOutcome::kUntestable)), "untestable");
  EXPECT_EQ(std::string(verdict_name(TestOutcome::kUnknown)), "unknown");
}

// The whole table is constexpr: decided at compile time, usable in
// static_assert by any consumer.
static_assert(test_outcome_of(sat::Result::kUnsat) ==
              TestOutcome::kUntestable);
static_assert(!proves_untestable(TestOutcome::kUnknown));
static_assert(is_decided(sat::Result::kSat));

}  // namespace
}  // namespace kms
