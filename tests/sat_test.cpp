#include "src/sat/solver.hpp"

#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/sat/dpll.hpp"

namespace kms::sat {
namespace {

TEST(SatTest, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_bool(a));
}

TEST(SatTest, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  EXPECT_FALSE(s.add_clause(mk_lit(a, true)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, ImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 50; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i)
    s.add_clause(mk_lit(v[i], true), mk_lit(v[i + 1]));
  s.add_clause(mk_lit(v[0]));
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.model_bool(v[i]));
}

TEST(SatTest, XorChainUnsat) {
  // x1 ^ x2, x2 ^ x3, x1 ^ x3 with odd parity constraint is UNSAT:
  // encode x_i != x_{i+1} cycles of odd length.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  auto neq = [&](Var x, Var y) {
    s.add_clause(mk_lit(x), mk_lit(y));
    s.add_clause(mk_lit(x, true), mk_lit(y, true));
  };
  neq(a, b);
  neq(b, c);
  neq(c, a);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  EXPECT_EQ(s.solve({mk_lit(a)}), Result::kSat);
  EXPECT_TRUE(s.model_bool(b));
  // Assumptions a & !b conflict with a->b.
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), Result::kUnsat);
  // Solver remains usable and satisfiable without assumptions.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatTest, DuplicateAndTautologicalLiterals) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(a), mk_lit(a), mk_lit(b)}));
  EXPECT_TRUE(s.add_clause({mk_lit(a), mk_lit(a, true)}));  // tautology
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatTest, PigeonholeUnsat) {
  // 4 pigeons in 3 holes. Small but requires real search.
  const int pigeons = 4, holes = 3;
  Solver s;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, PigeonholeSixSevenUnsat) {
  // 7 pigeons in 6 holes: forces many conflicts, restarts, learning.
  const int pigeons = 7, holes = 6;
  Solver s;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 10u);
}

TEST(SatTest, ModelSatisfiesAllClauses) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    Solver s;
    const int nv = 30;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    std::vector<std::vector<Lit>> cnf;
    for (int c = 0; c < 100; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(
            mk_lit(vars[rng.next_below(nv)], rng.next_bool()));
      cnf.push_back(clause);
      s.add_clause(clause);
    }
    if (s.solve() != Result::kSat) continue;
    for (const auto& clause : cnf) {
      bool satisfied = false;
      for (Lit l : clause)
        if (s.model_bool(l.var()) != l.sign()) satisfied = true;
      EXPECT_TRUE(satisfied);
    }
  }
}

class RandomCnfCross : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfCross, AgreesWithDpll) {
  // Random 3-SAT at the phase-transition ratio, cross-checked against
  // the reference DPLL decider.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const int nv = 16;
  const int nc = 68;  // ~4.25 * nv
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
  std::vector<std::vector<Lit>> cnf;
  bool trivially_unsat = false;
  for (int c = 0; c < nc; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(mk_lit(vars[rng.next_below(nv)], rng.next_bool()));
    cnf.push_back(clause);
    if (!s.add_clause(clause)) trivially_unsat = true;
  }
  const bool expect = dpll_satisfiable(nv, cnf);
  if (trivially_unsat) {
    EXPECT_FALSE(expect);
    return;
  }
  EXPECT_EQ(s.solve() == Result::kSat, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfCross, ::testing::Range(0, 60));

TEST(SatTest, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole with a tiny budget must come back kUnknown.
  const int pigeons = 9, holes = 8;
  Solver s;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::kUnknown);
}

TEST(SatTest, IncrementalSolvesWithGrowingClauses) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(mk_lit(a), mk_lit(b));
  EXPECT_EQ(s.solve(), Result::kSat);
  s.add_clause(mk_lit(a, true), mk_lit(c));
  s.add_clause(mk_lit(b, true), mk_lit(c));
  EXPECT_EQ(s.solve({mk_lit(c, true)}), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_bool(c));
}

}  // namespace
}  // namespace kms::sat
