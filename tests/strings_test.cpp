#include "src/base/strings.hpp"

#include <gtest/gtest.h>

namespace kms {
namespace {

TEST(StringsTest, SplitWsBasic) {
  const auto t = split_ws("  a bb   ccc ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
}

TEST(StringsTest, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t  ").empty());
}

TEST(StringsTest, SplitWsTabsAndNewlines) {
  const auto t = split_ws("x\ty\nz");
  ASSERT_EQ(t.size(), 3u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with(".names a b", ".names"));
  EXPECT_FALSE(starts_with(".name", ".names"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace kms
