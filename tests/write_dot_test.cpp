#include "src/netlist/write_dot.hpp"

#include <gtest/gtest.h>

#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/path.hpp"

namespace kms {
namespace {

TEST(WriteDotTest, ContainsEveryLiveGateAndEdge) {
  Network net = carry_skip_adder(2, 2);
  const std::string dot = write_dot_string(net);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  std::size_t nodes = 0, edges = 0;
  for (std::size_t pos = 0; (pos = dot.find("shape=", pos)) != std::string::npos;
       ++pos)
    ++nodes;
  for (std::size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos)
    ++edges;
  EXPECT_EQ(nodes, net.topo_order().size());
  EXPECT_EQ(edges, net.count_live_conns());
}

TEST(WriteDotTest, HighlightMarksPathEdges) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  PathEnumerator en(net);
  auto p = en.next();
  ASSERT_TRUE(p.has_value());
  DotOptions opts;
  opts.highlight = p->conns;
  const std::string dot = write_dot_string(net, opts);
  std::size_t red = 0;
  for (std::size_t pos = 0;
       (pos = dot.find("color=red", pos)) != std::string::npos; ++pos)
    ++red;
  EXPECT_EQ(red, p->conns.size());
}

TEST(WriteDotTest, ArrivalAnnotationsAppear) {
  AdderOptions opts;
  opts.cin_arrival = 5.0;
  Network net = carry_skip_adder(2, 2, opts);
  const std::string dot = write_dot_string(net);
  EXPECT_NE(dot.find("@5"), std::string::npos);
}

}  // namespace
}  // namespace kms
