// Fault-injection harness: prove that graceful degradation is *safe*.
// Under any schedule of forced solver aborts and mid-loop cancellation,
// (a) an aborted ATPG query is never treated as a redundancy proof, so
// nothing is ever deleted on an unproved premise, and (b) the output of
// kms_make_irredundant stays functionally equivalent to its input with
// the invariant checker clean.
#include <cstdio>

#include <gtest/gtest.h>

#include <sstream>

#include "src/atpg/atpg.hpp"
#include "src/atpg/fault.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/base/governor.hpp"
#include "src/check/checker.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"
#include "src/proof/verify.hpp"
#include "src/sim/simulator.hpp"

namespace kms {
namespace {

/// Equivalence oracle: exhaustive when feasible, SAT otherwise (the SAT
/// check runs ungoverned, so it is exact even in degraded scenarios).
bool equivalent(const Network& a, const Network& b) {
  if (a.inputs().size() <= 14) return exhaustive_equiv(a, b).equivalent;
  return sat_equivalent(a, b);
}

TEST(FaultInjectionTest, ForcedAbortIsNeverARedundancyProof) {
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);

  // Exact classification first, as ground truth.
  Atpg exact(net);
  std::vector<TestOutcome> truth;
  truth.reserve(faults.size());
  for (const Fault& f : faults) truth.push_back(exact.generate_test(f).outcome);

  // Every SAT query aborts. Any kUntestable still reported must have
  // been proved structurally (no solver involved) and must agree with
  // the ground truth; every fault that is really testable degrades to
  // kUnknown, never to a spurious verdict.
  ResourceGovernor gov;
  gov.set_injector(FaultInjector::random(/*seed=*/1, /*abort_probability=*/1.0));
  Atpg injected(net, &gov);
  std::size_t unknowns = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TestResult r = injected.generate_test(faults[i]);
    if (r.outcome == TestOutcome::kUntestable)
      EXPECT_EQ(truth[i], TestOutcome::kUntestable)
          << "injected abort produced a false redundancy claim";
    if (r.outcome == TestOutcome::kTestable)
      ADD_FAILURE() << "aborted query reported a test vector";
    EXPECT_FALSE(r.has_value());
    if (r.outcome == TestOutcome::kUnknown) ++unknowns;
  }
  EXPECT_GT(unknowns, 0u);
  EXPECT_EQ(injected.stats().unknown_queries, unknowns);
  EXPECT_EQ(injected.stats().testable, 0u);
}

TEST(FaultInjectionTest, ExhaustedGovernorRemovesNothing) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  ASSERT_GT(count_redundancies(net), 0u);  // there IS bait to delete
  const Network before = net;

  ResourceGovernor gov;
  gov.set_conflict_limit(0);
  RedundancyRemovalOptions opts;
  opts.context.governor = &gov;
  const RedundancyRemovalResult r = remove_redundancies(net, opts);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(net.count_gates(), before.count_gates());
  EXPECT_TRUE(equivalent(before, net));
}

TEST(FaultInjectionTest, MidLoopCancellationLeavesEquivalentNetwork) {
  // Simulate a SIGINT landing a few queries into the KMS loop: the
  // injector schedules a governor-wide interrupt after 5 solves.
  Network net = carry_skip_adder(6, 3);
  const Network original = net;
  ResourceGovernor gov;
  gov.set_injector(
      FaultInjector::random(/*seed=*/3, /*abort_probability=*/0.0,
                            /*cancel_after_queries=*/5));
  KmsOptions opts;
  opts.context.governor = &gov;
  const KmsStats stats = kms_make_irredundant(net, opts);
  EXPECT_TRUE(stats.interrupted);
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(NetworkChecker().run(net).error_count(), 0u);
  EXPECT_TRUE(equivalent(original, net));
}

// The acceptance property: across 60 seeded injection schedules —
// mixing abort probabilities from 0 to 0.9, scheduled mid-run
// cancellations, and four circuit families — kms_make_irredundant
// always yields a checker-clean network equivalent to its input. One
// ctest case per schedule: each stays tiny even under ASan plus the
// per-operation invariant self-checks, and a failing schedule is named
// directly in the ctest output.
class FaultInjectionScheduleTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultInjectionScheduleTest, PreservesEquivalence) {
  const std::uint64_t seed = GetParam();
  Network net;
  switch (seed % 4) {
    case 0:
      net = carry_skip_adder(2 + seed % 3, 2);
      break;
    case 1:
      net = carry_skip_adder(4, 1 + seed % 3);
      break;
    case 2: {
      RandomNetworkOptions ropts;
      ropts.inputs = 6;
      ropts.outputs = 3;
      ropts.gates = 30;
      ropts.seed = 1000 + seed;
      net = random_network(ropts);
      break;
    }
    default:
      net = comparator(3 + seed % 3);
      break;
  }
  const Network original = net;

  ResourceGovernor gov;
  const double probability = static_cast<double>(seed % 10) * 0.1;
  const std::uint64_t cancel_after =
      (seed % 3 == 0) ? 1 + seed % 11 : 0;  // a third also get "SIGINT"
  gov.set_injector(FaultInjector::random(seed, probability, cancel_after));

  KmsOptions opts;
  opts.context.governor = &gov;
  // The property under test is equivalence under degradation, not
  // optimization depth: cap the branch-and-bound budget and the loop's
  // transform count so uninjected schedules on the random-network
  // family (whose duplication phase can balloon) stay cheap under ASan.
  // Both caps are themselves graceful-exit paths, so every schedule
  // still ends in the final removal phase.
  opts.max_queries = 2000;
  opts.max_iterations = 50;
  const KmsStats stats = kms_make_irredundant(net, opts);

  SCOPED_TRACE(::testing::Message()
               << "schedule seed=" << seed << " p=" << probability
               << " cancel_after=" << cancel_after
               << " unknown=" << stats.unknown_queries);
  EXPECT_EQ(NetworkChecker().run(net).error_count(), 0u);
  EXPECT_TRUE(equivalent(original, net));
  if (cancel_after > 0 && gov.report().queries >= cancel_after)
    EXPECT_TRUE(stats.interrupted);
}

INSTANTIATE_TEST_SUITE_P(Schedules, FaultInjectionScheduleTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(FaultInjectionTest, InjectedAbortNeverEmitsVacuousUnsatProof) {
  // With every solve forced to abort, no ATPG query may conclude UNSAT —
  // so a proof session collected over the run must contain no
  // untestable-fault steps and no certificates, only unknown verdicts,
  // and must finalize as partial. A vacuous UNSAT certificate slipping
  // through here would let an aborted run "prove" a deletion.
  Network net = carry_skip_adder(2, 2);
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);

  ResourceGovernor gov;
  gov.set_injector(FaultInjector::random(/*seed=*/7, /*abort_probability=*/1.0));
  proof::ProofSession session;
  Atpg atpg(net, &gov, &session);
  for (const Fault& f : faults) {
    const TestResult r = atpg.generate_test(f);
    EXPECT_NE(r.outcome, TestOutcome::kUntestable)
        << "aborted solve concluded untestable";
    EXPECT_EQ(r.proof, -1) << "aborted solve carries a proof id";
  }
  EXPECT_TRUE(session.certificates().empty());
  EXPECT_TRUE(session.journal.partial());
  for (const proof::JournalStep& s : session.journal.steps())
    EXPECT_EQ(s.kind, proof::JournalStep::Kind::kFaultUnknown);
}

TEST(FaultInjectionTest, DegradedRunYieldsPartialJournalThatStillVerifies) {
  // A mid-run cancellation must mark the journal partial, and the steps
  // the run *did* prove must still verify end to end.
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  proof::ProofSession session;
  session.journal.set_model(net.name());
  const std::string input_blif = write_blif_string(net);
  session.journal.set_input_digest(proof::digest_bytes(input_blif));

  ResourceGovernor gov;
  gov.set_injector(
      FaultInjector::random(/*seed=*/11, /*abort_probability=*/0.5,
                            /*cancel_after_queries=*/8));
  KmsOptions opts;
  opts.context.governor = &gov;
  opts.context.session = &session;
  const KmsStats stats = kms_make_irredundant(net, opts);
  ASSERT_TRUE(stats.degraded);

  const std::string output_blif = write_blif_string(net);
  session.journal.set_output_digest(proof::digest_bytes(output_blif));
  EXPECT_TRUE(session.journal.partial());

  const proof::VerifyReport rep =
      proof::verify_session(session, input_blif, output_blif);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.partial);

  // And the partial marker round-trips: a journal that claims "end
  // complete" over these degraded steps is rejected at parse time.
  std::string text = session.journal.to_text();
  const auto pos = text.rfind("end partial");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "end complete");
  std::istringstream forged(text);
  EXPECT_THROW(proof::TransformJournal::read(forged), std::runtime_error);
}

TEST(FaultInjectionTest, DeletionWithoutProofIdIsRejected) {
  // A journal step claiming a deletion with no proof id (proof=-1, as an
  // aborted query would leave it) must be refused by the verifier even
  // when everything else about the session is pristine.
  Network net("noop");
  const GateId a = net.add_input("a");
  net.add_output("f", net.add_gate(GateKind::kBuf, {a}));
  const std::string blif = write_blif_string(net);

  proof::ProofSession session;
  session.journal.set_model(net.name());
  session.journal.set_input_digest(proof::digest_bytes(blif));
  session.journal.set_output_digest(proof::digest_bytes(blif));
  session.journal.add_delete("g(and)/SA0", /*proof=*/-1);

  const proof::VerifyReport rep = proof::verify_session(session, blif, blif);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("without a matching proven"), std::string::npos)
      << rep.error;

  // The same forgery must survive a text round-trip and still be
  // rejected: "step delete" with no proof= field parses to proof=-1.
  std::istringstream in(session.journal.to_text());
  const proof::TransformJournal parsed = proof::TransformJournal::read(in);
  ASSERT_EQ(parsed.steps().size(), 1u);
  EXPECT_EQ(parsed.steps()[0].proof, -1);
}

TEST(FaultInjectionTest, UninjectedGovernorMatchesUngovernedResult) {
  // Sanity: a governor with no limits must not change the algorithm.
  Network governed = carry_skip_adder(4, 2);
  Network plain = governed;

  ResourceGovernor gov;
  KmsOptions gopts;
  gopts.context.governor = &gov;
  const KmsStats gs = kms_make_irredundant(governed, gopts);
  const KmsStats ps = kms_make_irredundant(plain, KmsOptions{});

  EXPECT_FALSE(gs.degraded);
  EXPECT_EQ(gs.final_gates, ps.final_gates);
  EXPECT_EQ(gs.redundancies_removed, ps.redundancies_removed);
  EXPECT_EQ(gs.iterations, ps.iterations);
  EXPECT_TRUE(equivalent(governed, plain));
}

}  // namespace
}  // namespace kms
