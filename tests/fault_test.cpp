#include "src/atpg/fault.hpp"

#include <gtest/gtest.h>

#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

Network small_net() {
  // g1 = a & b (fanout 2); g2 = g1 | c; g3 = !g1.
  Network net("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c = net.add_input("c");
  const GateId g1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0, "g1");
  const GateId g2 = net.add_gate(GateKind::kOr, {g1, c}, 1.0, "g2");
  const GateId g3 = net.add_gate(GateKind::kNot, {g1}, 1.0, "g3");
  net.add_output("f", g2);
  net.add_output("h", g3);
  return net;
}

TEST(FaultTest, EnumerationCoversStemsAndBranches) {
  Network net = small_net();
  const auto faults = enumerate_faults(net);
  std::size_t stems = 0, branches = 0;
  for (const Fault& f : faults)
    (f.site == Fault::Site::kStem ? stems : branches) += 1;
  // Stems: a, b, c, g1, g2, g3 -> 6 gates x 2 values = 12.
  EXPECT_EQ(stems, 12u);
  // Branches: only g1 has fanout > 1: 2 conns x 2 values = 4.
  EXPECT_EQ(branches, 4u);
}

TEST(FaultTest, NoFaultsOnDeadOrConstantGates) {
  Network net = small_net();
  net.const_gate(true);  // unused constant
  const auto faults = enumerate_faults(net);
  for (const Fault& f : faults) {
    const GateId src = fault_source(net, f);
    EXPECT_FALSE(is_constant(net.gate(src).kind));
  }
}

TEST(FaultTest, CollapsingShrinksList) {
  Network net = small_net();
  const auto full = enumerate_faults(net);
  const auto collapsed = collapsed_faults(net);
  EXPECT_LT(collapsed.size(), full.size());
  EXPECT_GT(collapsed.size(), 0u);
}

TEST(FaultTest, CollapsingAndGateRule) {
  // For a fanout-free AND: input SA0s and output SA0 are one class.
  Network net("a");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  net.add_output("f", g);
  const auto collapsed = collapsed_faults(net);
  // Full list: stems a,b,g x2 = 6. Classes: {a0,b0,g0}, {a1}, {b1}, {g1}.
  EXPECT_EQ(collapsed.size(), 4u);
}

TEST(FaultTest, CollapsingInverterChain) {
  // NOT chain: every fault collapses onto the head equivalences.
  Network net("n");
  const GateId a = net.add_input("a");
  const GateId n1 = net.add_gate(GateKind::kNot, {a}, 1.0);
  const GateId n2 = net.add_gate(GateKind::kNot, {n1}, 1.0);
  net.add_output("f", n2);
  const auto collapsed = collapsed_faults(net);
  // a/SA0 == n1/SA1 == n2/SA0; a/SA1 == n1/SA0 == n2/SA1 -> 2 classes.
  EXPECT_EQ(collapsed.size(), 2u);
}

TEST(FaultTest, FormatFaultMentionsSite) {
  Network net = small_net();
  const auto faults = enumerate_faults(net);
  ASSERT_FALSE(faults.empty());
  const std::string s = format_fault(net, faults[0]);
  EXPECT_NE(s.find("/SA"), std::string::npos);
}

TEST(FaultTest, CarrySkipFaultCountsScaleWithBits) {
  Network small = carry_skip_adder(4, 2);
  Network large = carry_skip_adder(8, 2);
  decompose_to_simple(small);
  decompose_to_simple(large);
  EXPECT_GT(collapsed_faults(large).size(),
            collapsed_faults(small).size());
}

}  // namespace
}  // namespace kms
