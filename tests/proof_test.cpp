// Tests for the proof library: DRAT traces, the independent RUP
// checker, the transform journal, and end-to-end session verification.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/kms.hpp"
#include "src/netlist/blif.hpp"
#include "src/proof/checker.hpp"
#include "src/proof/drat.hpp"
#include "src/proof/journal.hpp"
#include "src/proof/verify.hpp"
#include "src/sat/solver.hpp"

namespace kms::proof {
namespace {

using sat::mk_lit;
using sat::Solver;
using sat::Var;

// ---- RUP checker on hand-written certificates ----------------------------

TEST(DratCheckerTest, AcceptsHandWrittenResolutionProof) {
  // (a|b) (a|-b) (-a|c) (-a|-c) is UNSAT. Lemmas: (a), then empty via
  // propagation.
  DratCertificate cert;
  cert.formula = {{1, 2}, {1, -2}, {-1, 3}, {-1, -3}};
  cert.steps = {{DratStep::Kind::kLearn, {1}}};
  const DratCheckResult r = check_drat(cert);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lemmas_checked, 1u);
}

TEST(DratCheckerTest, RejectsNonRupLemma) {
  // (a|b) alone does not imply (a): asserting -a does not conflict.
  DratCertificate cert;
  cert.formula = {{1, 2}};
  cert.steps = {{DratStep::Kind::kLearn, {1}}};
  const DratCheckResult r = check_drat(cert);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not a RUP consequence"), std::string::npos)
      << r.error;
}

TEST(DratCheckerTest, RejectsProofWithoutEmptyClause) {
  // Satisfiable formula, valid lemma, but no conflict is ever derived.
  DratCertificate cert;
  cert.formula = {{1, 2}, {-1, 2}};
  cert.steps = {{DratStep::Kind::kLearn, {2}}};
  const DratCheckResult r = check_drat(cert);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("empty clause"), std::string::npos) << r.error;
}

TEST(DratCheckerTest, RejectsDeletionOfUnknownClause) {
  DratCertificate cert;
  cert.formula = {{1}, {-1}};
  cert.steps = {{DratStep::Kind::kDelete, {7, 8}}};
  const DratCheckResult r = check_drat(cert);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not in the database"), std::string::npos)
      << r.error;
}

TEST(DratCheckerTest, HonoursDeletionsBeforeJudgingLaterLemmas) {
  // After deleting (a|b), the lemma (a) is no longer derivable.
  DratCertificate cert;
  cert.formula = {{1, 2}, {1, -2}};
  cert.steps = {{DratStep::Kind::kDelete, {1, 2}},
                {DratStep::Kind::kLearn, {1}}};
  const DratCheckResult r = check_drat(cert);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not a RUP consequence"), std::string::npos)
      << r.error;
}

TEST(DratCheckerTest, AssumptionsActAsPremises) {
  // (a -> b), (a -> -b) is SAT, but UNSAT under assumption a.
  DratCertificate cert;
  cert.formula = {{-1, 2}, {-1, -2}};
  cert.assumptions = {1};
  const DratCheckResult r = check_drat(cert);
  EXPECT_TRUE(r.ok) << r.error;
}

// ---- solver-emitted certificates -----------------------------------------

TEST(DratTraceTest, SolverEmitsVerifiableUnsatCertificate) {
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  // Odd anti-equality cycle: UNSAT, needs actual search/learning.
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  auto neq = [&](Var x, Var y) {
    s.add_clause(mk_lit(x), mk_lit(y));
    s.add_clause(mk_lit(x, true), mk_lit(y, true));
  };
  neq(a, b);
  neq(b, c);
  neq(c, a);
  ASSERT_EQ(s.solve(), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->formula.size(), 6u);
  const DratCheckResult r = check_drat(*cert);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(DratTraceTest, PigeonholeCertificateWithLearningVerifies) {
  const int pigeons = 5, holes = 4;
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  ASSERT_EQ(s.solve(), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());
  EXPECT_GT(trace.step_count(), 0u);  // real learning happened
  const DratCheckResult r = check_drat(*cert);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(DratTraceTest, UnsatUnderAssumptionsVerifies) {
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  ASSERT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());
  ASSERT_EQ(cert->assumptions.size(), 2u);
  const DratCheckResult r = check_drat(*cert);
  EXPECT_TRUE(r.ok) << r.error;
}

// Satellite regression: a reused solver must never let the second query
// inherit the first query's UNSAT conclusion.
TEST(DratTraceTest, SecondQueryOnReusedSolverDoesNotInheritProof) {
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  // Query 1: UNSAT under {a, -b}.
  ASSERT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), sat::Result::kUnsat);
  ASSERT_TRUE(trace.last_unsat_certificate().has_value());
  // Query 2: SAT under {a}. The previous conclusion must be gone — a
  // certificate here would claim UNSAT for a satisfiable query.
  ASSERT_EQ(s.solve({mk_lit(a)}), sat::Result::kSat);
  EXPECT_FALSE(trace.last_unsat_certificate().has_value());
  // Query 3: UNSAT again, under its own assumptions; the certificate
  // must carry query 3's assumptions and verify independently.
  ASSERT_EQ(s.solve({mk_lit(b, true), mk_lit(a)}), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->query, 3u);
  const DratCheckResult r = check_drat(*cert);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(DratTraceTest, RootContradictionYieldsTrivialCertificate) {
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  const Var a = s.new_var();
  s.add_clause(mk_lit(a));
  s.add_clause(mk_lit(a, true));
  ASSERT_EQ(s.solve(), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());
  const DratCheckResult r = check_drat(*cert);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(DratTraceTest, CertificateSurvivesFileRoundTrip) {
  Solver s;
  DratTrace trace;
  s.set_proof(&trace);
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  auto neq = [&](Var x, Var y) {
    s.add_clause(mk_lit(x), mk_lit(y));
    s.add_clause(mk_lit(x, true), mk_lit(y, true));
  };
  neq(a, b);
  neq(b, c);
  // a != b != c forces a == c; assuming them apart is UNSAT.
  ASSERT_EQ(s.solve({mk_lit(a), mk_lit(c, true)}), sat::Result::kUnsat);
  const auto cert = trace.last_unsat_certificate();
  ASSERT_TRUE(cert.has_value());

  std::ostringstream cnf, drat;
  write_cnf(*cert, cnf);
  write_drat(*cert, drat);
  std::istringstream cnf_in(cnf.str()), drat_in(drat.str());
  const DratCertificate back = read_certificate(cnf_in, drat_in);
  EXPECT_EQ(back.formula, cert->formula);
  EXPECT_EQ(back.assumptions, cert->assumptions);
  const DratCheckResult r = check_drat(back);
  EXPECT_TRUE(r.ok) << r.error;
}

// ---- transform journal ---------------------------------------------------

TEST(JournalTest, TextRoundTrip) {
  TransformJournal j;
  j.set_model("weird \"name\" with \\ chars");
  j.set_input_digest(0x0123456789abcdefull);
  j.set_output_digest(0xfedcba9876543210ull);
  j.add_decompose(3);
  j.add_path_unsens("a -> g1(and) -> f", 0);
  j.add_duplicate(2);
  j.add_constant(17);
  j.add_fault_untestable("g1(and)/SA0", 1);
  j.add_delete("g1(and)/SA0", 1);

  std::istringstream in(j.to_text());
  const TransformJournal back = TransformJournal::read(in);
  EXPECT_EQ(back.model(), j.model());
  EXPECT_EQ(back.input_digest(), j.input_digest());
  EXPECT_EQ(back.output_digest(), j.output_digest());
  ASSERT_EQ(back.steps().size(), j.steps().size());
  for (std::size_t i = 0; i < back.steps().size(); ++i) {
    EXPECT_EQ(back.steps()[i].kind, j.steps()[i].kind) << i;
    EXPECT_EQ(back.steps()[i].proof, j.steps()[i].proof) << i;
    EXPECT_EQ(back.steps()[i].what, j.steps()[i].what) << i;
    EXPECT_EQ(back.steps()[i].count, j.steps()[i].count) << i;
  }
  EXPECT_FALSE(back.partial());
}

TEST(JournalTest, PartialRunsFinalizeAsPartial) {
  TransformJournal j;
  j.add_fault_unknown("g1(and)/SA0");
  EXPECT_TRUE(j.partial());
  EXPECT_NE(j.to_text().find("end partial"), std::string::npos);

  std::istringstream in(j.to_text());
  EXPECT_TRUE(TransformJournal::read(in).partial());
}

TEST(JournalTest, RejectsCompleteClaimOverDegradedSteps) {
  TransformJournal j;
  j.mark_partial("injected");
  std::string text = j.to_text();
  const auto pos = text.find("end partial");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "end complete");
  std::istringstream in(text);
  EXPECT_THROW(TransformJournal::read(in), std::runtime_error);
}

TEST(JournalTest, RejectsUnknownStepKind) {
  std::istringstream in(
      "kms-journal v1\nmodel \"m\"\ninput-digest 0\n"
      "step launder-deletion proof=0\noutput-digest 0\nend complete\n");
  EXPECT_THROW(TransformJournal::read(in), std::runtime_error);
}

// ---- session verification ------------------------------------------------

/// Classic redundant circuit: f = ab + a'c + bc; the consensus term bc
/// is redundant (both its stuck-at faults are untestable).
constexpr const char* kConsensusBlif =
    ".model consensus\n"
    ".inputs a b c\n"
    ".outputs f\n"
    ".names a b x\n11 1\n"
    ".names a c y\n01 1\n"
    ".names b c z\n11 1\n"
    ".names x y z f\n1-- 1\n-1- 1\n--1 1\n"
    ".end\n";

/// Run the certified pipeline on the consensus circuit, returning the
/// session plus the bracketing serializations.
struct CertifiedRun {
  ProofSession session;
  std::string input, output;
  KmsStats stats;
};

CertifiedRun certified_consensus_run(bool static_prepass = false) {
  CertifiedRun run;
  Network net = read_blif_string(kConsensusBlif);
  run.input = write_blif_string(net);
  run.session.journal.set_model(net.name());
  run.session.journal.set_input_digest(digest_bytes(run.input));
  KmsOptions opts;
  opts.context.session = &run.session;
  // Default off: these tests exercise the DRAT-certificate path, and
  // the static pre-pass would discharge the consensus redundancies
  // SAT-free (the static journal path has its own tests below and in
  // static_untestable_test.cpp).
  opts.removal.static_prepass = static_prepass;
  run.stats = kms_make_irredundant(net, opts);
  run.output = write_blif_string(net);
  run.session.journal.set_output_digest(digest_bytes(run.output));
  return run;
}

TEST(VerifySessionTest, CertifiedKmsRunVerifies) {
  CertifiedRun run = certified_consensus_run();
  ASSERT_GT(run.stats.redundancies_removed, 0u);
  const VerifyReport rep =
      verify_session(run.session, run.input, run.output);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(rep.partial);
  EXPECT_GT(rep.deletions_verified, 0u);
  EXPECT_GT(rep.certificates_checked, 0u);
}

TEST(VerifySessionTest, RejectsForgedDeletionStep) {
  CertifiedRun run = certified_consensus_run();
  // Forge a deletion that cites no untestable verdict.
  run.session.journal.add_delete("x(and)/SA1", -1);
  const VerifyReport rep =
      verify_session(run.session, run.input, run.output);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("without a matching proven"), std::string::npos)
      << rep.error;
}

TEST(VerifySessionTest, RejectsDeletionCitingWrongProof) {
  CertifiedRun run = certified_consensus_run();
  TransformJournal forged;
  forged.set_model(run.session.journal.model());
  forged.set_input_digest(run.session.journal.input_digest());
  forged.set_output_digest(run.session.journal.output_digest());
  for (JournalStep s : run.session.journal.steps()) {
    // Redirect every deletion to a different fault than its proof covers.
    if (s.kind == JournalStep::Kind::kDelete) s.what = "x(and)/SA1";
    forged.add(s);
  }
  run.session.journal = forged;
  const VerifyReport rep =
      verify_session(run.session, run.input, run.output);
  EXPECT_FALSE(rep.ok);
}

TEST(VerifySessionTest, RejectsTamperedCertificate) {
  CertifiedRun run = certified_consensus_run();
  // Strip the formula of one certificate: its conclusion loses support
  // unless the proof never needed that clause — strip ALL clauses to be
  // sure the empty clause is no longer derivable.
  ASSERT_FALSE(run.session.certificates().empty());
  ProofSession tampered;
  tampered.journal = run.session.journal;
  for (DratCertificate c : run.session.certificates()) {
    c.formula.clear();
    c.assumptions.clear();
    tampered.add_certificate(std::move(c));
  }
  const VerifyReport rep = verify_session(tampered, run.input, run.output);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("rejected"), std::string::npos) << rep.error;
}

TEST(VerifySessionTest, CertifiedStaticRunVerifies) {
  CertifiedRun run = certified_consensus_run(/*static_prepass=*/true);
  ASSERT_GT(run.stats.redundancies_removed, 0u);
  const VerifyReport rep = verify_session(run.session, run.input, run.output);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(rep.partial);
  EXPECT_GT(rep.deletions_verified, 0u);
  // The consensus redundancy is statically provable, so at least one
  // deletion must ride on a re-derived structural claim.
  EXPECT_GT(rep.static_checked, 0u);
}

TEST(VerifySessionTest, RejectsStaticJustificationMismatch) {
  CertifiedRun run = certified_consensus_run(/*static_prepass=*/true);
  TransformJournal forged;
  forged.set_model(run.session.journal.model());
  forged.set_input_digest(run.session.journal.input_digest());
  forged.set_output_digest(run.session.journal.output_digest());
  bool touched = false;
  for (JournalStep s : run.session.journal.steps()) {
    if (s.kind == JournalStep::Kind::kFaultStaticUntestable) {
      s.just += " stuck=1";  // no longer the certificate's text
      touched = true;
    }
    forged.add(s);
  }
  ASSERT_TRUE(touched);
  run.session.journal = forged;
  const VerifyReport rep = verify_session(run.session, run.input, run.output);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("justification"), std::string::npos) << rep.error;
}

TEST(VerifySessionTest, RejectsForgedStaticClaim) {
  CertifiedRun run = certified_consensus_run(/*static_prepass=*/true);
  ASSERT_FALSE(run.session.static_certificates().empty());
  // Consistent forgery: step text and certificate agree, but the claim
  // itself is false (gate 0 is a primary input of the snapshot state
  // and certainly reaches an output). Only re-derivation catches this.
  const std::string bogus = "site=stem:0 stuck=0 kind=unobservable";
  ProofSession tampered;
  TransformJournal forged;
  forged.set_model(run.session.journal.model());
  forged.set_input_digest(run.session.journal.input_digest());
  forged.set_output_digest(run.session.journal.output_digest());
  for (JournalStep s : run.session.journal.steps()) {
    if (s.kind == JournalStep::Kind::kFaultStaticUntestable) s.just = bogus;
    forged.add(s);
  }
  tampered.journal = forged;
  for (StaticCertificate c : run.session.static_certificates()) {
    c.justification = bogus;
    tampered.add_static_certificate(std::move(c));
  }
  const VerifyReport rep = verify_session(tampered, run.input, run.output);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("rejected"), std::string::npos) << rep.error;
}

TEST(VerifySessionTest, StaticArtifactDirRoundTrip) {
  CertifiedRun run = certified_consensus_run(/*static_prepass=*/true);
  const std::string dir =
      testing::TempDir() + "/kms_proof_static_artifacts_roundtrip";
  write_artifacts(run.session, dir, run.input, run.output);
  const VerifyReport rep = verify_artifact_dir(dir);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.static_checked, 0u);
  EXPECT_GT(rep.deletions_verified, 0u);
}

TEST(VerifySessionTest, RejectsDigestMismatch) {
  CertifiedRun run = certified_consensus_run();
  const VerifyReport rep =
      verify_session(run.session, run.input + "\n", run.output);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("digest"), std::string::npos) << rep.error;
}

TEST(VerifySessionTest, RejectsTransformWithoutPathVerdict) {
  ProofSession session;
  session.journal.set_input_digest(digest_bytes("x"));
  session.journal.set_output_digest(digest_bytes("y"));
  session.journal.add_duplicate(2);  // no preceding path-unsens
  const VerifyReport rep = verify_session(session, "x", "y");
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("unsensitizable-path"), std::string::npos)
      << rep.error;
}

TEST(VerifySessionTest, ArtifactDirRoundTrip) {
  CertifiedRun run = certified_consensus_run();
  const std::string dir =
      testing::TempDir() + "/kms_proof_artifacts_roundtrip";
  write_artifacts(run.session, dir, run.input, run.output);
  const VerifyReport rep = verify_artifact_dir(dir);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.deletions_verified, 0u);
}

TEST(VerifySessionTest, ArtifactDirRejectsMissingPieces) {
  const VerifyReport rep =
      verify_artifact_dir(testing::TempDir() + "/kms_proof_nonexistent");
  EXPECT_FALSE(rep.ok);
}

}  // namespace
}  // namespace kms::proof
