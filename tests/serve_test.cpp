// Job API unit suite (src/serve/): the schema-versioned JobSpec /
// JobReport JSON round trip, the strict parser, the job fingerprint the
// daemon's result cache is keyed by, the cache policy itself, and
// run_job() — the single engine entry point kmscli and kmsd share.
//
// The round-trip tests are property tests driven through the X-macro
// field tables from job.hpp: they enumerate exactly the fields the
// serializer does, so a field added to the struct but forgotten by the
// wire format is impossible by construction, and a randomized value in
// EVERY field must survive spec -> JSON -> spec byte-exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "src/base/governor.hpp"
#include "src/proof/journal.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/job.hpp"
#include "src/serve/json.hpp"
#include "src/serve/runner.hpp"

namespace {

using namespace kms;
using namespace kms::serve;

// ---- minimal JSON engine ------------------------------------------------

TEST(JsonTest, ParsesScalarsObjectsAndArrays) {
  const Json v = Json::parse(
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":18446744073709551615}})");
  EXPECT_EQ(v.find("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), -2.5);
  EXPECT_EQ(v.find("c")->as_string(), "x\ny");
  EXPECT_EQ(v.find("d")->items().size(), 3u);
  EXPECT_TRUE(v.find("d")->items()[0].as_bool());
  // u64 extremes survive (the parser keeps the raw literal).
  EXPECT_EQ(v.find("e")->find("f")->as_u64(), UINT64_MAX);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "}", "{\"a\":}", "{\"a\":1,}", "[1,]", "{'a':1}",
        "{\"a\":01}", "{\"a\":1e}", "\"unterminated", "{\"a\":1}x",
        "{\"a\":+1}", "nul", "{\"a\":.5}"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << bad;
  }
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(JsonTest, QuotedStringsRoundTrip) {
  for (const std::string s :
       {std::string("plain"), std::string("quote\"back\\slash"),
        std::string("tab\tnl\ncr\r"), std::string("nul\x01\x1f bytes"),
        std::string("utf8 \xc3\xa9\xe2\x86\x92")}) {
    std::string quoted;
    json_append_quoted(&quoted, s);
    EXPECT_EQ(Json::parse(quoted).as_string(), s) << quoted;
  }
}

// ---- JobSpec round trip --------------------------------------------------

std::string fuzz_string(std::mt19937_64* rng) {
  static const char kAlphabet[] =
      "abcXYZ019 _-./\\\"\t\n{}[]:,\x01\x1f\x7f";
  std::uniform_int_distribution<int> len(0, 24);
  std::uniform_int_distribution<int> pick(0, sizeof kAlphabet - 2);
  std::string out;
  const int n = len(*rng);
  for (int i = 0; i < n; ++i) out.push_back(kAlphabet[pick(*rng)]);
  return out;
}

JobSpec fuzz_spec(std::mt19937_64* rng) {
  JobSpec spec;
  spec.kind = static_cast<JobKind>((*rng)() % 7);
#define KMS_FUZZ(name, dflt) spec.name = fuzz_string(rng);
  KMS_JOB_SPEC_STRING_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) spec.name = (*rng)();
  KMS_JOB_SPEC_U64_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) \
  spec.name = static_cast<std::int64_t>((*rng)());
  KMS_JOB_SPEC_I64_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) \
  spec.name = std::uniform_real_distribution<double>(-1e9, 1e9)(*rng);
  KMS_JOB_SPEC_F64_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) spec.name = ((*rng)() & 1) != 0;
  KMS_JOB_SPEC_BOOL_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
  return spec;
}

JobReport fuzz_report(std::mt19937_64* rng) {
  JobReport rep;
  rep.exit_code = static_cast<int>((*rng)() % 4);
#define KMS_FUZZ(name, dflt) rep.name = fuzz_string(rng);
  KMS_JOB_REPORT_STRING_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) rep.name = (*rng)();
  KMS_JOB_REPORT_U64_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) \
  rep.name = std::uniform_real_distribution<double>(-1e9, 1e9)(*rng);
  KMS_JOB_REPORT_F64_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
#define KMS_FUZZ(name, dflt) rep.name = ((*rng)() & 1) != 0;
  KMS_JOB_REPORT_BOOL_FIELDS(KMS_FUZZ)
#undef KMS_FUZZ
  const int diags = static_cast<int>((*rng)() % 4);
  for (int i = 0; i < diags; ++i)
    rep.diagnostics.push_back(fuzz_string(rng));
  return rep;
}

TEST(JobSpecTest, DefaultSpecRoundTrips) {
  const JobSpec spec;
  EXPECT_EQ(parse_job_spec(spec.to_json()), spec);
}

TEST(JobSpecTest, EveryFieldSurvivesTheRoundTripFuzzed) {
  std::mt19937_64 rng(0x4b4d5331);  // fixed seed: deterministic suite
  for (int iter = 0; iter < 500; ++iter) {
    const JobSpec spec = fuzz_spec(&rng);
    const JobSpec back = parse_job_spec(spec.to_json());
    ASSERT_EQ(back, spec) << spec.to_json();
    // Canonical form is a fixed point.
    ASSERT_EQ(back.to_json(), spec.to_json());
  }
}

TEST(JobReportTest, EveryFieldSurvivesTheRoundTripFuzzed) {
  std::mt19937_64 rng(0x4b4d5332);
  for (int iter = 0; iter < 500; ++iter) {
    const JobReport rep = fuzz_report(&rng);
    const JobReport back = parse_job_report(rep.to_json());
    ASSERT_EQ(back, rep) << rep.to_json();
    ASSERT_EQ(back.to_json(), rep.to_json());
  }
}

TEST(JobSpecTest, AllKindNamesRoundTrip) {
  for (int k = 0; k < 7; ++k) {
    JobSpec spec;
    spec.kind = static_cast<JobKind>(k);
    EXPECT_EQ(parse_job_spec(spec.to_json()).kind, spec.kind);
    JobKind parsed;
    ASSERT_TRUE(parse_job_kind(job_kind_name(spec.kind), &parsed));
    EXPECT_EQ(parsed, spec.kind);
  }
}

TEST(JobSpecTest, WrongOrMissingSchemaVersionIsRejected) {
  EXPECT_THROW(parse_job_spec(R"({"kind":"irr"})"), JobError);
  EXPECT_THROW(parse_job_spec(R"({"schema":"kms-job-v0","kind":"irr"})"),
               JobError);
  EXPECT_THROW(parse_job_spec(R"({"schema":"kms-job-v2","kind":"irr"})"),
               JobError);
  EXPECT_THROW(
      parse_job_report(R"({"schema":"kms-job-v1","exit_code":0})"),
      JobError);
  // The happy path, for contrast.
  EXPECT_NO_THROW(parse_job_spec(R"({"schema":"kms-job-v1","kind":"irr"})"));
}

TEST(JobSpecTest, UnknownKeysAndTypeMismatchesAreRejected) {
  EXPECT_THROW(
      parse_job_spec(R"({"schema":"kms-job-v1","kind":"irr","frob":1})"),
      JobError);
  EXPECT_THROW(
      parse_job_spec(R"({"schema":"kms-job-v1","kind":"irr","jobs":"4"})"),
      JobError);
  EXPECT_THROW(
      parse_job_spec(R"({"schema":"kms-job-v1","kind":"irr","check":1})"),
      JobError);
  EXPECT_THROW(parse_job_spec(R"({"schema":"kms-job-v1","kind":"nope"})"),
               JobError);
}

TEST(JobSpecTest, ValidateCatchesContradictorySpecs) {
  JobSpec spec;
  EXPECT_EQ(spec.validate(), "no BLIF payload (blif or blif_path required)");
  spec.blif = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
  EXPECT_EQ(spec.validate(), "");
  spec.blif_path = "/tmp/x.blif";
  EXPECT_NE(spec.validate(), "");  // both payloads
  spec.blif_path.clear();
  spec.resume = "/tmp/dir";
  EXPECT_NE(spec.validate(), "");  // resume + payload
  spec.blif.clear();
  EXPECT_EQ(spec.validate(), "");
  spec.kind = JobKind::kAudit;
  EXPECT_NE(spec.validate(), "");  // resume is irr/certify-only
  spec = JobSpec();
  spec.blif = "x";
  spec.speculate_k = 0;
  EXPECT_NE(spec.validate(), "");
  spec = JobSpec();
  spec.blif = "x";
  spec.jobs = 5000;
  EXPECT_NE(spec.validate(), "");
}

// ---- fingerprint + cache -------------------------------------------------

TEST(JobFingerprintTest, TracksOptionsAndPayloadButNotIdentity) {
  JobSpec a;
  a.blif = "payload";
  const std::uint64_t digest = proof::digest_bytes(a.blif);
  JobSpec b = a;
  EXPECT_EQ(job_fingerprint(a, digest), job_fingerprint(b, digest));
  // Client identity and payload spelling (inline vs path) are not part
  // of the result; every result-affecting option is.
  b.client = "someone-else";
  EXPECT_EQ(job_fingerprint(a, digest), job_fingerprint(b, digest));
  b = a;
  b.blif.clear();
  b.blif_path = "/circuits/same-bytes.blif";
  EXPECT_EQ(job_fingerprint(a, digest), job_fingerprint(b, digest));
  b = a;
  b.mode = "viability";
  EXPECT_NE(job_fingerprint(a, digest), job_fingerprint(b, digest));
  b = a;
  b.check = true;
  EXPECT_NE(job_fingerprint(a, digest), job_fingerprint(b, digest));
  EXPECT_NE(job_fingerprint(a, digest), job_fingerprint(a, digest + 1));
}

TEST(ReportCacheTest, HitMarksCopyAndCountsAndEvictsLru) {
  ReportCache cache(2);
  JobSpec spec;
  spec.blif = "p";
  JobReport rep;
  rep.verdict = "ok";
  cache.insert(1, spec, rep);
  cache.insert(2, spec, rep);
  EXPECT_EQ(cache.size(), 2u);
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.lookups(), 1u);
  // 1 was just used; inserting 3 evicts 2.
  cache.insert(3, spec, rep);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(ReportCacheTest, OnlyDeterministicCompletedRunsAreCacheable) {
  JobSpec spec;
  spec.blif = "p";
  JobReport rep;
  EXPECT_TRUE(ReportCache::cacheable(spec, rep));
  JobReport bad = rep;
  bad.exit_code = 2;
  EXPECT_FALSE(ReportCache::cacheable(spec, bad));
  bad = rep;
  bad.degraded = true;
  EXPECT_FALSE(ReportCache::cacheable(spec, bad));
  bad = rep;
  bad.interrupted = true;
  EXPECT_FALSE(ReportCache::cacheable(spec, bad));
  bad = rep;
  bad.cache_hit = true;  // never re-cache a cache hit
  EXPECT_FALSE(ReportCache::cacheable(spec, bad));
  JobSpec timed = spec;
  timed.time_limit = 1.0;  // load-dependent outcome
  EXPECT_FALSE(ReportCache::cacheable(timed, rep));
  JobSpec resumed = spec;
  resumed.blif.clear();
  resumed.resume = "/tmp/dir";
  EXPECT_FALSE(ReportCache::cacheable(resumed, rep));
}

// ---- run_job -------------------------------------------------------------

constexpr const char kStatRed[] =
    ".model statred\n"
    ".inputs a0 b0 a1 b1\n"
    ".outputs y0 y1\n"
    ".names a0 b0 n5\n11 1\n"
    ".names n5 y0\n1 1\n"
    ".names a1 b1 n7\n11 1\n"
    ".names n7 y1\n1 1\n"
    ".end\n";

TEST(RunJobTest, InlineIrrJobReturnsResultAndDigests) {
  JobSpec spec;
  spec.kind = JobKind::kIrr;
  spec.blif = kStatRed;
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.exit_code, 0) << rep.error;
  EXPECT_EQ(rep.verdict, "ok");
  EXPECT_EQ(rep.kind, "irr");
  EXPECT_FALSE(rep.output_blif.empty());
  EXPECT_EQ(rep.input_digest, proof::digest_bytes(kStatRed));
  EXPECT_EQ(rep.output_digest, proof::digest_bytes(rep.output_blif));
  EXPECT_GT(rep.initial_gates, 0u);
  EXPECT_LE(rep.final_gates, rep.initial_gates);
  EXPECT_GT(rep.wall_seconds, 0.0);
  // Determinism: the same spec reproduces the same result bytes.
  ResourceGovernor governor2;
  const JobReport again = run_job(spec, governor2);
  EXPECT_EQ(again.output_blif, rep.output_blif);
  EXPECT_EQ(again.output_digest, rep.output_digest);
}

TEST(RunJobTest, CertifyKindForcesTheInProcessAudit) {
  JobSpec spec;
  spec.kind = JobKind::kCertify;
  spec.blif = kStatRed;
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.exit_code, 0) << rep.error;
  EXPECT_TRUE(rep.certified);
  EXPECT_FALSE(rep.certify_partial);
  EXPECT_GT(rep.steps_checked, 0u);
}

TEST(RunJobTest, InvalidSpecIsRejectedNotRun) {
  JobSpec spec;  // no payload
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.verdict, "rejected");
  EXPECT_EQ(rep.exit_code, 1);
  EXPECT_FALSE(rep.error.empty());
}

TEST(RunJobTest, PayloadlessStatsIsDaemonOnly) {
  JobSpec spec;
  spec.kind = JobKind::kStats;
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.verdict, "rejected");
  EXPECT_EQ(rep.exit_code, 1);
}

TEST(RunJobTest, BadPayloadIsAnErrorWithDiagnostic) {
  JobSpec spec;
  spec.kind = JobKind::kStats;
  spec.blif = "this is not blif\n";
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.verdict, "error");
  EXPECT_EQ(rep.exit_code, 2);
  EXPECT_FALSE(rep.error.empty());
}

TEST(RunJobTest, ReportRoundTripsThroughTheWireFormat) {
  JobSpec spec;
  spec.kind = JobKind::kAudit;
  spec.blif = kStatRed;
  ResourceGovernor governor;
  const JobReport rep = run_job(spec, governor);
  EXPECT_EQ(rep.exit_code, 0) << rep.error;
  EXPECT_GT(rep.audit_faults, 0u);
  const JobReport back = parse_job_report(rep.to_json());
  EXPECT_EQ(back, rep);
}

}  // namespace
