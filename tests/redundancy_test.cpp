#include "src/atpg/redundancy.hpp"

#include <gtest/gtest.h>

#include "src/atpg/atpg.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

namespace kms {
namespace {

TEST(RedundancyRemovalTest, MakesCarrySkipTestable) {
  Network net = carry_skip_adder(4, 2);
  decompose_to_simple(net);
  Network orig = net;
  const auto r = remove_redundancies(net);
  EXPECT_GT(r.removed, 0u);
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  EXPECT_EQ(count_redundancies(net), 0u);
}

TEST(RedundancyRemovalTest, NaiveRemovalSlowsCarrySkipAdder) {
  // The motivating observation (Sections I and III): straightforward
  // redundancy removal on the carry-skip adder deletes the skip chain
  // and the circuit slows down to ripple speed. "Speed" is the computed
  // delay — the longest *sensitizable* path; the topological longest
  // path of the carry-skip adder is a false path.
  Network net = carry_skip_adder(8, 2);
  decompose_to_simple(net);
  apply_unit_delays(net);
  const double before =
      computed_delay(net, SensitizationMode::kStatic).delay;
  remove_redundancies(net);
  const double after =
      computed_delay(net, SensitizationMode::kStatic).delay;
  EXPECT_GT(after, before);
}

TEST(RedundancyRemovalTest, IdempotentOnIrredundantCircuit) {
  Network net = ripple_carry_adder(3);
  decompose_to_simple(net);
  const std::size_t gates = net.count_gates();
  const auto r = remove_redundancies(net);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(net.count_gates(), gates);
}

TEST(RedundancyRemovalTest, RemovesMaskedDuplicateTerm) {
  Network net("m");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId t1 = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId t2 = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId o = net.add_gate(GateKind::kOr, {t1, t2}, 1.0);
  net.add_output("f", o);
  Network orig = net;
  remove_redundancies(net);
  EXPECT_TRUE(exhaustive_equiv(orig, net).equivalent);
  // One of the two AND terms must be gone.
  EXPECT_LE(net.count_gates(), 2u);
  EXPECT_EQ(count_redundancies(net), 0u);
}

TEST(RedundancyRemovalTest, FaultSimOnAndOffAgree) {
  for (std::uint64_t seed = 70; seed < 74; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 25;
    Network with_sim = random_network(opts);
    Network without_sim = with_sim;
    Network orig = with_sim;
    RedundancyRemovalOptions o1;
    o1.use_fault_sim = true;
    RedundancyRemovalOptions o2;
    o2.use_fault_sim = false;
    remove_redundancies(with_sim, o1);
    remove_redundancies(without_sim, o2);
    // Both must yield equivalent, fully testable circuits.
    EXPECT_TRUE(exhaustive_equiv(orig, with_sim).equivalent);
    EXPECT_TRUE(exhaustive_equiv(orig, without_sim).equivalent);
    EXPECT_EQ(count_redundancies(with_sim), 0u);
    EXPECT_EQ(count_redundancies(without_sim), 0u);
  }
}

TEST(RedundancyRemovalTest, ApplyRemovalStem) {
  Network net("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId t = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
  const GateId o = net.add_gate(GateKind::kOr, {t, a}, 1.0);
  net.add_output("f", o);
  const Fault f{Fault::Site::kStem, t, ConnId::invalid(), false};
  apply_redundancy_removal(net, f);
  EXPECT_EQ(net.gate(t).kind, GateKind::kConst0);
  simplify(net);
  // f == a now.
  EXPECT_TRUE(eval_once(net, {true, false})[0]);
  EXPECT_FALSE(eval_once(net, {false, true})[0]);
}

}  // namespace
}  // namespace kms
