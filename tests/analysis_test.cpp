// Static analysis subsystem unit tests: levelized traversal, the
// post-dominator tree, implication learning, SCOAP metrics, fault
// collapsing (and its agreement with the ATPG layer's collapsed list),
// the exact structural snapshot, the NL017-NL021 rules and the
// aggregated report. The soundness property suite for the SAT-free
// untestability verdicts lives in static_untestable_test.cpp.
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/analysis/collapse.hpp"
#include "src/analysis/dominators.hpp"
#include "src/analysis/implication.hpp"
#include "src/analysis/levels.hpp"
#include "src/analysis/report.hpp"
#include "src/analysis/rules.hpp"
#include "src/analysis/scoap.hpp"
#include "src/analysis/snapshot.hpp"
#include "src/atpg/fault.hpp"
#include "src/check/diagnostics.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"

namespace kms {
namespace {

using analysis::DominatorTree;
using analysis::ImplicationEngine;

/// Chain a -> n1 = NOT a -> n2 = NOT n1 -> output y: every gate has a
/// unique path to the single output, so the dominator chain is total.
constexpr const char* kChainBlif =
    ".model chain\n"
    ".inputs a\n"
    ".outputs y\n"
    ".names a n1\n0 1\n"
    ".names n1 y\n0 1\n"
    ".end\n";

/// f = ab + a'c + bc (the consensus circuit): bc is redundant, and the
/// stem of a fans out to reconvergent paths.
constexpr const char* kConsensusBlif =
    ".model consensus\n"
    ".inputs a b c\n"
    ".outputs f\n"
    ".names a b x\n11 1\n"
    ".names a c y\n01 1\n"
    ".names b c z\n11 1\n"
    ".names x y z f\n1-- 1\n-1- 1\n--1 1\n"
    ".end\n";

/// y = a AND (a AND b): the direct a branch into the outer AND is a
/// statically provable (blocked) redundancy.
constexpr const char* kStatredBlif =
    ".model statred\n"
    ".inputs a b\n"
    ".outputs y\n"
    ".names a b x\n11 1\n"
    ".names a x y\n11 1\n"
    ".end\n";

Network load(const char* blif) {
  Network net = read_blif_string(blif);
  decompose_to_simple(net);
  return net;
}

std::vector<Network> property_circuits() {
  std::vector<Network> nets;
  nets.push_back(load(kConsensusBlif));
  nets.push_back(load(kStatredBlif));
  nets.push_back(carry_skip_adder(4, 2));
  nets.push_back(parity_tree(8));
  for (std::uint64_t seed = 400; seed < 406; ++seed) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 35;
    nets.push_back(random_network(opts));
  }
  for (Network& n : nets) decompose_to_simple(n);
  return nets;
}

bool is_source(const Gate& g) {
  return g.kind == GateKind::kInput || g.kind == GateKind::kConst0 ||
         g.kind == GateKind::kConst1;
}

// ---- levels --------------------------------------------------------------

TEST(AnalysisLevelsTest, SourcesAtZeroAndMonotoneAlongConnections) {
  for (const Network& net : property_circuits()) {
    const auto levels = analysis::gate_levels(net);
    for (const GateId g : net.topo_order()) {
      const Gate& gate = net.gate(g);
      if (is_source(gate)) {
        EXPECT_EQ(levels[g.value()], 0u);
        continue;
      }
      // A logic gate sits strictly above every fanin source; an output
      // marker takes its driver's level.
      for (const ConnId c : gate.fanins) {
        if (net.conn(c).dead) continue;
        const GateId src = net.conn(c).from;
        if (gate.kind == GateKind::kOutput)
          EXPECT_EQ(levels[g.value()], levels[src.value()]);
        else
          EXPECT_GT(levels[g.value()], levels[src.value()]);
      }
    }
  }
}

TEST(AnalysisLevelsTest, LevelizedOrderIsTopologicalAndStable) {
  for (const Network& net : property_circuits()) {
    const auto order = analysis::levelized_order(net);
    const auto levels = analysis::gate_levels(net);
    EXPECT_EQ(order.size(), net.topo_order().size());
    for (std::size_t i = 1; i < order.size(); ++i) {
      const auto a = levels[order[i - 1].value()];
      const auto b = levels[order[i].value()];
      EXPECT_TRUE(a < b || (a == b && order[i - 1].value() < order[i].value()))
          << "order not sorted by (level, id) at position " << i;
    }
  }
}

// ---- dominators ----------------------------------------------------------

TEST(AnalysisDominatorsTest, ChainCircuitHasTotalDominatorChain) {
  const Network net = load(kChainBlif);
  const DominatorTree dom(net);
  // Find the two NOT gates; the one feeding the output dominates the
  // other, and both reach the output.
  GateId first = GateId::invalid(), second = GateId::invalid();
  for (const GateId g : net.topo_order()) {
    if (net.gate(g).kind != GateKind::kNot) continue;
    const GateId src = net.conn(net.gate(g).fanins[0]).from;
    if (net.gate(src).kind == GateKind::kInput)
      first = g;
    else
      second = g;
  }
  ASSERT_TRUE(first.is_valid());
  ASSERT_TRUE(second.is_valid());
  EXPECT_TRUE(dom.reaches_output(first));
  EXPECT_TRUE(dom.dominates(second, first));
  EXPECT_FALSE(dom.dominates(first, second));
  const auto chain = dom.chain(first);
  EXPECT_TRUE(std::find(chain.begin(), chain.end(), second) != chain.end());
}

TEST(AnalysisDominatorsTest, IpdomBlocksEveryPathToAnOutput) {
  // Semantic property on every circuit: a DFS from g that refuses to
  // pass through ipdom(g) must never reach a primary output — that is
  // the definition the blocked rule's soundness rests on.
  for (const Network& net : property_circuits()) {
    const DominatorTree dom(net);
    std::vector<char> is_output(net.gate_capacity(), 0);
    for (const GateId g : net.topo_order())
      if (net.gate(g).kind == GateKind::kOutput) is_output[g.value()] = 1;
    for (const GateId g : net.topo_order()) {
      if (!dom.reaches_output(g)) continue;
      const GateId d = dom.ipdom(g);
      if (!d.is_valid()) continue;  // immediate pdom is the virtual sink
      std::vector<char> seen(net.gate_capacity(), 0);
      std::vector<GateId> stack{g};
      seen[g.value()] = 1;
      bool escaped = false;
      while (!stack.empty() && !escaped) {
        const GateId cur = stack.back();
        stack.pop_back();
        if (cur != g && is_output[cur.value()]) escaped = true;
        for (const ConnId c : net.gate(cur).fanouts) {
          if (net.conn(c).dead) continue;
          const GateId to = net.conn(c).to;
          if (to == d || seen[to.value()]) continue;
          seen[to.value()] = 1;
          stack.push_back(to);
        }
      }
      EXPECT_FALSE(escaped)
          << "ipdom does not block all paths from gate " << g.value();
    }
  }
}

// ---- implications --------------------------------------------------------

TEST(AnalysisImplicationTest, AndGateForwardAndBackwardRules) {
  const Network net = load(kStatredBlif);
  const ImplicationEngine imp(net);
  // Locate a = input "a", the inner AND x and the outer AND y.
  GateId a = GateId::invalid(), inner = GateId::invalid(),
         outer = GateId::invalid();
  for (const GateId g : net.topo_order()) {
    const Gate& gate = net.gate(g);
    if (gate.kind == GateKind::kInput && gate.name == "a") a = g;
    if (gate.kind == GateKind::kAnd) {
      bool feeds_output_marker = false;
      for (const ConnId c : gate.fanouts) {
        if (net.conn(c).dead) continue;
        if (net.gate(net.conn(c).to).kind == GateKind::kOutput)
          feeds_output_marker = true;
      }
      (feeds_output_marker ? outer : inner) = g;
    }
  }
  ASSERT_TRUE(a.is_valid());
  ASSERT_TRUE(inner.is_valid());
  ASSERT_TRUE(outer.is_valid());

  // Backward: outer = 1 forces both fanins, transitively a = b = 1.
  const auto just = imp.propagate({{outer, true}});
  EXPECT_FALSE(just.conflict);
  EXPECT_TRUE(just.implies(inner, true));
  EXPECT_TRUE(just.implies(a, true));

  // Conflict: a = 0 forces inner = 0 and outer = 0; seeding outer = 1
  // on top is unsatisfiable in the good circuit.
  const auto clash = imp.propagate({{a, false}, {outer, true}});
  EXPECT_TRUE(clash.conflict);

  // Forward: a = 0 alone closes to outer = 0 without conflict.
  const auto fwd = imp.propagate({{a, false}});
  EXPECT_FALSE(fwd.conflict);
  EXPECT_TRUE(fwd.implies(inner, false));
  EXPECT_TRUE(fwd.implies(outer, false));
}

TEST(AnalysisImplicationTest, ClosureIsDeterministic) {
  const Network net = load(kConsensusBlif);
  const ImplicationEngine imp(net);
  for (const GateId g : net.topo_order()) {
    for (const bool v : {false, true}) {
      const auto r1 = imp.propagate({{g, v}});
      const auto r2 = imp.propagate({{g, v}});
      EXPECT_EQ(r1.conflict, r2.conflict);
      EXPECT_EQ(r1.assigned, r2.assigned);
    }
  }
}

// ---- SCOAP ---------------------------------------------------------------

TEST(AnalysisScoapTest, InputsCostOneAndGatesAddDepth) {
  const Network net = load(kStatredBlif);
  const auto m = analysis::compute_scoap(net);
  for (const GateId g : net.topo_order()) {
    const Gate& gate = net.gate(g);
    if (gate.kind == GateKind::kInput) {
      EXPECT_EQ(m.cc0[g.value()], 1u);
      EXPECT_EQ(m.cc1[g.value()], 1u);
      EXPECT_TRUE(m.observable(g));
    }
    if (gate.kind == GateKind::kAnd) {
      // AND output 1 needs every input at 1: one plus the sum of fanin
      // CC1s; output 0 needs only the cheapest fanin at 0.
      std::uint32_t sum1 = 1, min0 = analysis::kScoapInfinity;
      for (const ConnId c : gate.fanins) {
        if (net.conn(c).dead) continue;
        const GateId src = net.conn(c).from;
        sum1 += m.cc1[src.value()];
        min0 = std::min(min0, m.cc0[src.value()]);
      }
      EXPECT_EQ(m.cc1[g.value()], sum1);
      EXPECT_EQ(m.cc0[g.value()], min0 + 1);
    }
  }
}

TEST(AnalysisScoapTest, UnreachableGatesAreUnobservable) {
  for (const Network& net : property_circuits()) {
    const auto m = analysis::compute_scoap(net);
    const DominatorTree dom(net);
    for (const GateId g : net.topo_order()) {
      // Observability through SCOAP and reachability through the
      // dominator machinery must agree on who can never be seen.
      if (!dom.reaches_output(g)) EXPECT_FALSE(m.observable(g));
    }
  }
}

// ---- fault collapsing ----------------------------------------------------

TEST(AnalysisCollapseTest, PartitionAgreesWithAtpgCollapsedList) {
  for (const Network& net : property_circuits()) {
    const analysis::FaultCollapse fc(net);
    const auto full = enumerate_faults(net);
    const auto reps = collapsed_faults(net);
    EXPECT_EQ(fc.total_faults(), full.size());
    EXPECT_EQ(fc.classes().size(), reps.size())
        << "analysis partition and ATPG representative list disagree";
    std::size_t members = 0;
    for (const auto& cls : fc.classes()) {
      EXPECT_FALSE(cls.members.empty());
      members += cls.members.size();
    }
    EXPECT_EQ(members, full.size());
    // Largest-first ordering is part of the contract (NL020 keys on it).
    for (std::size_t i = 1; i < fc.classes().size(); ++i)
      EXPECT_GE(fc.classes()[i - 1].members.size(),
                fc.classes()[i].members.size());
  }
}

TEST(AnalysisCollapseTest, SimpleGateHasDominanceEdges) {
  // A lone AND gate contributes the textbook dominance pairs (output
  // SA1 dominates each input SA1 for AND).
  const Network net = load(kStatredBlif);
  const analysis::FaultCollapse fc(net);
  EXPECT_GT(fc.dominance_edges(), 0u);
}

// ---- snapshot ------------------------------------------------------------

TEST(AnalysisSnapshotTest, RoundTripPreservesGateIdentity) {
  // The contract certificates rest on: gate i of the parsed network IS
  // the snapshot's gate i — same kind, same fanin pins (as snapshot
  // indices, in pin order), same name. Byte-idempotence of a second
  // write is NOT promised (the rebuilt network may serialize in a
  // different valid topological order); identity of coordinates is.
  for (const Network& net : property_circuits()) {
    const std::string s = analysis::write_snapshot(net);
    ASSERT_EQ(analysis::write_snapshot(net), s);  // deterministic bytes
    const Network back = analysis::read_snapshot(s);
    const auto order = analysis::snapshot_order(net);
    ASSERT_EQ(back.topo_order().size(), order.size());
    std::vector<std::uint32_t> index(net.gate_capacity(), 0);
    for (std::size_t i = 0; i < order.size(); ++i)
      index[order[i].value()] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Gate& orig = net.gate(order[i]);
      const Gate& copy = back.gate(GateId(static_cast<std::uint32_t>(i)));
      EXPECT_EQ(copy.kind, orig.kind);
      EXPECT_EQ(copy.name, orig.name);
      std::vector<std::uint32_t> want, got;
      for (const ConnId c : orig.fanins) {
        if (net.conn(c).dead) continue;
        want.push_back(index[net.conn(c).from.value()]);
      }
      for (const ConnId c : copy.fanins) {
        if (back.conn(c).dead) continue;
        got.push_back(back.conn(c).from.value());
      }
      EXPECT_EQ(got, want) << "fanin pins differ at snapshot index " << i;
    }
  }
}

TEST(AnalysisSnapshotTest, RejectsMalformedInput) {
  EXPECT_THROW(analysis::read_snapshot("not a snapshot"),
               std::runtime_error);
  EXPECT_THROW(analysis::read_snapshot(""), std::runtime_error);
  // Truncation mid-file must not produce a silently different network.
  const Network net = load(kConsensusBlif);
  const std::string s = analysis::write_snapshot(net);
  EXPECT_THROW(analysis::read_snapshot(s.substr(0, s.size() / 2)),
               std::runtime_error);
}

// ---- rules and report ----------------------------------------------------

TEST(AnalysisRulesTest, BlockedBranchFiresOnStatredOnly) {
  const Network statred = load(kStatredBlif);
  Diagnostics d;
  analysis::run_analysis_rules(statred, &d);
  bool nl019 = false;
  for (const Diagnostic& f : d.all()) {
    EXPECT_EQ(f.severity, Severity::kWarning);
    if (f.rule == "NL019") nl019 = true;
  }
  EXPECT_TRUE(nl019) << "statically redundant branch not reported";

  // An irredundant parity tree triggers none of the untestability rules.
  Network clean = parity_tree(8);
  decompose_to_simple(clean);
  Diagnostics none;
  analysis::run_analysis_rules(clean, &none);
  for (const Diagnostic& f : none.all())
    EXPECT_TRUE(f.rule != "NL017" && f.rule != "NL018" && f.rule != "NL019")
        << f.rule << " fired on an irredundant circuit: " << f.message;
}

TEST(AnalysisRulesTest, RegistryCarriesTheAnalysisRules) {
  for (const char* id : {"NL017", "NL018", "NL019", "NL020", "NL021"}) {
    const RuleInfo* info = find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->severity, Severity::kWarning) << id;
  }
}

TEST(AnalysisReportTest, StatredReportCountsTheBlockedFaults) {
  const Network net = load(kStatredBlif);
  const analysis::AnalysisReport rep = analysis::run_analysis(net);
  EXPECT_GT(rep.gates, 0u);
  EXPECT_GT(rep.fault_sites, 0u);
  EXPECT_GE(rep.blocked, 1u);
  EXPECT_GE(rep.static_untestable(), 1u);
  EXPECT_EQ(rep.total_faults, enumerate_faults(net).size());
  std::ostringstream json, text;
  rep.print_json(json);
  rep.print_text(text);
  EXPECT_NE(json.str().find("\"blocked\""), std::string::npos);
  EXPECT_FALSE(text.str().empty());
}

}  // namespace
}  // namespace kms
