// Redundancy audit: load a BLIF circuit (or a generated default), run
// fault enumeration + fault simulation + exact SAT ATPG, and report the
// circuit's testability profile — the workflow a test engineer would run
// before deciding whether redundancy removal is safe for timing.
//
//   $ ./redundancy_audit [circuit.blif]
#include <cstdio>
#include <string>

#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/base/rng.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

int main(int argc, char** argv) {
  Network net = [&] {
    if (argc > 1) return read_blif_file(argv[1]);
    Network n = carry_skip_adder(8, 2);
    decompose_to_simple(n);
    apply_unit_delays(n);
    return n;
  }();
  std::printf("circuit: %s\n", net.name().c_str());
  std::printf("  inputs/outputs : %zu / %zu\n", net.inputs().size(),
              net.outputs().size());
  std::printf("  gates          : %zu (depth %zu, max fanout %zu)\n",
              net.count_gates(), net.depth(), net.max_fanout());
  std::printf("  longest path   : %.2f\n", topological_delay(net));
  const DelayReport dr = computed_delay(net, SensitizationMode::kStatic);
  std::printf("  computed delay : %.2f (%zu paths examined)\n", dr.delay,
              dr.paths_examined);

  const auto faults = collapsed_faults(net);
  std::printf("\nfault universe   : %zu collapsed faults (%zu raw)\n",
              faults.size(), enumerate_faults(net).size());

  // Phase 1: random-pattern fault simulation.
  FaultSimulator sim(net);
  Rng rng(1);
  const auto detected = sim.detect_random(faults, 16, rng);
  std::size_t easy = 0;
  for (bool d : detected)
    if (d) ++easy;
  std::printf("  1024 random patterns detect %zu (%.1f%%)\n", easy,
              100.0 * static_cast<double>(easy) /
                  static_cast<double>(faults.size()));

  // Phase 2: exact ATPG on the survivors.
  Atpg atpg(net);
  std::size_t hard = 0, redundant = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (atpg.is_testable(faults[i])) {
      ++hard;
    } else {
      ++redundant;
      std::printf("  REDUNDANT: %s\n",
                  format_fault(net, faults[i]).c_str());
    }
  }
  std::printf("  SAT ATPG: %zu hard-but-testable, %zu redundant\n", hard,
              redundant);
  if (redundant == 0) {
    std::printf("\ncircuit is fully single-stuck-at testable.\n");
  } else {
    std::printf(
        "\ncircuit is NOT fully testable; if any redundancy guards a "
        "false long path,\nplain removal will slow the circuit — use "
        "kms_make_irredundant (see quickstart).\n");
  }
  return 0;
}
