// Sequential usage (Section I of the paper): a carry-skip accumulator.
//
// "This algorithm may be generalized to sequential circuits by
// extracting the combinational portion from the sequential circuit
// since the cycle time of a synchronous sequential circuit is
// determined by the delay of the combinational portions between
// latches." Here the combinational portion is a carry-skip adder whose
// redundancy would force a speedtest; running the algorithm on the core
// makes the whole machine testable at an unchanged clock.
//
//   $ ./sequential_accumulator
#include <cstdio>

#include "src/atpg/atpg.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/seq/seq_network.hpp"

using namespace kms;

namespace {

/// state' = state + in (8-bit, carry-skip core); out = state.
SeqNetwork make_accumulator(std::size_t bits) {
  Network adder = carry_skip_adder(bits, 2);
  decompose_to_simple(adder);
  apply_unit_delays(adder);

  Network core("accumulator");
  std::vector<GateId> ins, state;
  for (std::size_t i = 0; i < bits; ++i)
    ins.push_back(core.add_input("in" + std::to_string(i)));
  for (std::size_t i = 0; i < bits; ++i)
    state.push_back(core.add_input("q" + std::to_string(i)));
  std::vector<GateId> map(adder.gate_capacity());
  for (std::size_t i = 0; i < bits; ++i)
    map[adder.inputs()[i].value()] = ins[i];
  for (std::size_t i = 0; i < bits; ++i)
    map[adder.inputs()[bits + i].value()] = state[i];
  map[adder.inputs()[2 * bits].value()] = core.const_gate(false);
  for (GateId g : adder.topo_order()) {
    const Gate& gt = adder.gate(g);
    if (!is_logic(gt.kind) || is_constant(gt.kind)) continue;
    std::vector<GateId> srcs;
    for (ConnId c : gt.fanins)
      srcs.push_back(map[adder.conn(c).from.value()]);
    map[g.value()] = core.add_gate(gt.kind, srcs, gt.delay, gt.name);
  }
  for (std::size_t i = 0; i < bits; ++i)
    core.add_output("out" + std::to_string(i), state[i]);
  for (std::size_t i = 0; i < bits; ++i)
    core.add_output(
        "d" + std::to_string(i),
        map[adder.conn(adder.gate(adder.outputs()[i]).fanins[0]).from
                .value()]);
  simplify(core);
  return SeqNetwork(std::move(core), std::vector<bool>(bits, false));
}

unsigned as_unsigned(const std::vector<bool>& bits) {
  unsigned v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) v |= 1u << i;
  return v;
}

}  // namespace

int main() {
  const std::size_t bits = 8;
  SeqNetwork acc = make_accumulator(bits);
  SeqNetwork original = acc;

  std::printf("8-bit carry-skip accumulator\n");
  std::printf("  core gates    : %zu\n", acc.comb().count_gates());
  std::printf("  latches       : %zu\n", acc.num_latches());
  std::printf("  cycle time    : %.0f gate delays (computed)\n",
              acc.cycle_time(SensitizationMode::kStatic));
  std::printf("  redundancies  : %zu\n", count_redundancies(acc.comb()));

  const SeqKmsResult r = kms_on_sequential(acc);
  std::printf("\nafter kms_on_sequential:\n");
  std::printf("  cycle time    : %.0f -> %.0f\n", r.cycle_before,
              r.cycle_after);
  std::printf("  redundancies  : %zu\n", count_redundancies(acc.comb()));
  std::printf("  behaviour kept: %s\n",
              random_sequence_equiv(original, acc, 1, 1024) ? "yes"
                                                            : "NO (bug!)");

  // Demonstrate a few cycles: accumulate 10, 20, 30.
  std::vector<std::vector<bool>> stimulus;
  for (unsigned v : {10u, 20u, 30u, 0u}) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bits; ++i) in.push_back((v >> i) & 1);
    stimulus.push_back(std::move(in));
  }
  const auto outs = acc.simulate(stimulus);
  std::printf("\naccumulating 10, 20, 30: state trace =");
  for (const auto& o : outs) std::printf(" %u", as_unsigned(o));
  std::printf("\n");
  return 0;
}
