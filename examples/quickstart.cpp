// Quickstart: build a redundant circuit, run the KMS algorithm, verify.
//
//   $ ./quickstart
//
// Builds the 8-bit / 4-bit-block carry-skip adder of the paper's Table I,
// shows that performance optimization left it untestable, runs
// kms_make_irredundant, and prints the before/after summary.
#include <cstdio>

#include "src/atpg/atpg.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sensitize.hpp"

int main() {
  using namespace kms;

  // 1. A circuit whose speed depends on redundancy: the carry-skip adder.
  Network net = carry_skip_adder(8, 4);
  decompose_to_simple(net);  // the algorithm wants simple gates
  apply_unit_delays(net);    // Table I's unit gate-delay model
  Network original = net;

  std::printf("csa 8.4 (carry-skip adder, 8 bits, 4-bit blocks)\n");
  std::printf("  gates                 : %zu\n", net.count_gates());
  std::printf("  redundant faults      : %zu\n", count_redundancies(net));
  const DelayReport before = computed_delay(net, SensitizationMode::kStatic);
  std::printf("  computed delay        : %.0f gate delays\n", before.delay);

  // 2. Make it irredundant without losing speed.
  KmsOptions opts;
  opts.mode = SensitizationMode::kStatic;
  const KmsStats stats = kms_make_irredundant(net, opts);

  // 3. Inspect the result.
  std::printf("\nafter kms_make_irredundant:\n");
  std::printf("  gates                 : %zu\n", net.count_gates());
  std::printf("  redundant faults      : %zu\n", count_redundancies(net));
  const DelayReport after = computed_delay(net, SensitizationMode::kStatic);
  std::printf("  computed delay        : %.0f gate delays\n", after.delay);
  std::printf("  loop iterations       : %zu\n", stats.iterations);
  std::printf("  gates duplicated      : %zu\n", stats.duplicated_gates);
  std::printf("  residual removals     : %zu\n", stats.redundancies_removed);
  std::printf("  still equivalent      : %s\n",
              sat_equivalent(original, net) ? "yes" : "NO (bug!)");
  return 0;
}
