// Timing explorer: walk the K longest paths of a circuit and classify
// each as statically sensitizable / viable / false — the Section V view
// of why "longest path" alone is the wrong delay measure.
//
//   $ ./timing_explorer [circuit.blif] [K]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/path.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

int main(int argc, char** argv) {
  Network net = [&] {
    if (argc > 1) return read_blif_file(argv[1]);
    AdderOptions opts;
    opts.cin_arrival = 5.0;  // the Section III late carry-in
    Network n = carry_skip_adder(4, 2, opts);
    decompose_to_simple(n);
    return n;
  }();
  const std::size_t k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;

  std::printf("circuit: %s — %zu gates, longest path %.2f\n",
              net.name().c_str(), net.count_gates(),
              topological_delay(net));
  std::printf("%-6s %-8s %-8s %-8s  path\n", "#", "length", "static",
              "viable");

  Sensitizer stat(net, SensitizationMode::kStatic);
  Sensitizer viab(net, SensitizationMode::kViability);
  PathEnumerator en(net);
  double first_true_delay = -1;
  for (std::size_t i = 0; i < k; ++i) {
    auto p = en.next();
    if (!p) break;
    const bool s = stat.check(*p).has_value();
    const bool v = viab.check(*p).has_value();
    if (v && first_true_delay < 0) first_true_delay = p->length;
    std::printf("%-6zu %-8.2f %-8s %-8s  %s\n", i + 1, p->length,
                s ? "yes" : "no", v ? "yes" : "no",
                format_path(net, *p).c_str());
  }
  const DelayReport ds = computed_delay(net, SensitizationMode::kStatic);
  const DelayReport dv = computed_delay(net, SensitizationMode::kViability);
  std::printf(
      "\ncomputed delay: %.2f (static sensitization), %.2f (viability),\n"
      "longest path:   %.2f — the gap is the false-path pessimism a\n"
      "plain static timing verifier reports.\n",
      ds.delay, dv.delay, topological_delay(net));
  return 0;
}
