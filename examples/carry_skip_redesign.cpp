// The paper's Section III narrative, executed: the 2-b carry-skip adder
// of Fig. 1, its redundancy, the speed-test hazard, and the novel
// irredundant design the algorithm produces (Figs. 2/6).
//
//   $ ./carry_skip_redesign
#include <cstdio>

#include "src/atpg/atpg.hpp"
#include "src/atpg/inject.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/path.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

namespace {

GateId find_gate(const Network& net, const std::string& name) {
  for (std::uint32_t i = 0; i < net.gate_capacity(); ++i) {
    const GateId g{i};
    if (!net.gate(g).dead && net.gate(g).name == name) return g;
  }
  return GateId::invalid();
}

}  // namespace

int main() {
  // Fig. 1, with the Section III timing assumptions: c0 arrives at t=5,
  // all other inputs at t=0; AND/OR gates cost 1, XOR/MUX cost 2.
  AdderOptions opts;
  opts.and_or_delay = 1.0;
  opts.xor_mux_delay = 2.0;
  opts.cin_arrival = 5.0;
  Network adder = carry_skip_adder(2, 2, opts);

  // The carry cone (Fig. 4): the paper analyses c2, "because in an adder
  // composed of blocks ... the critical path for the entire adder will
  // be the path through the carry-out of each block."
  Network cone = extract_output(adder, adder.outputs().size() - 1);
  decompose_to_simple(cone);

  std::printf("=== 2-b carry-skip adder, carry cone (Fig. 1/4) ===\n");
  std::printf("longest path     : %.0f gate delays\n",
              topological_delay(cone));
  PathEnumerator en(cone);
  auto longest = en.next();
  std::printf("  %s\n", format_path(cone, *longest).c_str());
  Sensitizer sens(cone, SensitizationMode::kStatic);
  std::printf("  statically sensitizable? %s\n",
              sens.check(*longest) ? "yes" : "no (false path)");

  const DelayReport crit = computed_delay(cone, SensitizationMode::kStatic);
  std::printf("critical path    : %.0f gate delays\n", crit.delay);
  std::printf("  %s\n", format_path(cone, *crit.witness).c_str());

  // The redundancy: skip-AND (gate 10 in Fig. 1) stuck-at-0.
  const GateId skip = find_gate(cone, "skip0");
  const Fault sa0{Fault::Site::kStem, skip, ConnId::invalid(), false};
  Atpg atpg(cone);
  std::printf("\nskip-AND s-a-0 testable? %s\n",
              atpg.is_testable(sa0) ? "yes" : "no -- redundant");

  // The speed-test hazard: with the fault, the circuit is a ripple adder
  // and needs 11 gate delays, but the clock was set for 8.
  Network faulty = inject_fault(cone, sa0);  // structure kept intact
  const DelayReport fd = computed_delay(faulty, SensitizationMode::kStatic);
  std::printf("delay with fault : %.0f gate delays  (clock was set for "
              "%.0f!)\n",
              fd.delay, crit.delay);

  // Run the algorithm: the novel irredundant carry-skip design.
  Network redesigned = cone;
  const KmsStats stats = kms_make_irredundant(redesigned, {});
  std::printf("\n=== after the KMS algorithm (Fig. 6) ===\n");
  std::printf("gates            : %zu -> %zu\n", stats.initial_gates,
              stats.final_gates);
  std::printf("computed delay   : %.0f -> %.0f gate delays\n",
              stats.initial_computed_delay, stats.final_computed_delay);
  std::printf("redundant faults : %zu -> %zu\n", count_redundancies(cone),
              count_redundancies(redesigned));
  std::printf("equivalent       : %s\n",
              exhaustive_equiv(cone, redesigned).equivalent ? "yes"
                                                            : "NO (bug!)");
  std::printf("\nirredundant carry cone in BLIF:\n%s",
              write_blif_string(redesigned).c_str());
  return 0;
}
