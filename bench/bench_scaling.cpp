// Runtime scaling (google-benchmark): supports Section VI.2's practical
// argument — the loop's work tracks the number of non-viable longest
// paths, so the algorithm stays cheap as the adder grows.
#include <benchmark/benchmark.h>

#include "src/atpg/atpg.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/path.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

namespace {

using namespace kms;

Network make_csa(std::size_t bits, std::size_t block) {
  Network net = carry_skip_adder(bits, block);
  decompose_to_simple(net);
  apply_unit_delays(net);
  return net;
}

void BM_KmsOnCarrySkip(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const Network base = make_csa(bits, 4);
  for (auto _ : state) {
    Network net = base;
    KmsStats s = kms_make_irredundant(net, {});
    benchmark::DoNotOptimize(s.final_gates);
  }
  state.counters["gates"] =
      static_cast<double>(base.count_gates());
}
BENCHMARK(BM_KmsOnCarrySkip)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RedundancyCount(benchmark::State& state) {
  const Network net = make_csa(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_redundancies(net));
  }
}
BENCHMARK(BM_RedundancyCount)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_PathEnumeration(benchmark::State& state) {
  const Network net = make_csa(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    PathEnumerator en(net);
    std::size_t n = 0;
    while (n < 1000 && en.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PathEnumeration)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ComputedDelay(benchmark::State& state) {
  const Network net = make_csa(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    const DelayReport r =
        computed_delay(net, SensitizationMode::kStatic);
    benchmark::DoNotOptimize(r.delay);
  }
}
BENCHMARK(BM_ComputedDelay)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_StaticTimingAnalysis(benchmark::State& state) {
  RandomNetworkOptions opts;
  opts.gates = static_cast<std::size_t>(state.range(0));
  opts.inputs = 32;
  opts.outputs = 16;
  opts.seed = 7;
  const Network net = random_network(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topological_delay(net));
  }
}
BENCHMARK(BM_StaticTimingAnalysis)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
