// Speculative sensitization in the KMS loop: committed SAT queries,
// loop wall time and loop CPU time with the serial engine
// (speculate_k=1, jobs=1) versus the speculative one (speculate_k=8,
// jobs=4).
//
// Modes:
//   bench_kmsloop                  human-readable table
//   bench_kmsloop --json <path>    kms-bench-kmsloop-v1 JSON (schema
//                                  documented in DESIGN.md §16), validated
//                                  by tools/validate_bench_kmsloop.py
//   bench_kmsloop --json <path> --quick
//                                  smallest circuit only, one rep (the CI
//                                  bench-smoke stage)
//
// Both configurations run the loop phase only (remove_remaining off):
// the removal phase has its own parallel engine and would dilute the
// loop signal. Each configuration runs kReps times and the minimum is
// reported — the run least disturbed by the host — for both the wall
// and the CPU clock; on a throttled container wall time is mostly
// scheduler noise, so CPU seconds are reported alongside as the stable
// measure of work done. The corpus spans both regimes: single-cone
// adders and the Table-I substitutes (the component filter keeps the
// speculative engine out of the way) and a replicated multi-block
// datapath — the largest circuit here — whose independent critical
// cones are where speculation pays.
//
// Two contracts are measured, not just timed: the BLIF digests of the
// two end states must match bit for bit, and the speculative run must
// never *commit* more SAT queries than the serial one (cache hits
// replace solves; speculative solves are counted separately and never
// journal). The bench exits 2 if either breaks.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"

using namespace kms;

namespace {

constexpr int kReps = 3;

struct LoopRun {
  KmsStats stats;
  double seconds = 0.0;      ///< min wall seconds over the reps
  double cpu_seconds = 0.0;  ///< min process-CPU seconds over the reps
  std::uint64_t digest = 0;  ///< FNV-1a of the end state's BLIF bytes
};

LoopRun run_loop(const Network& net, std::size_t speculate_k, unsigned jobs,
                 int reps) {
  LoopRun run;
  for (int rep = 0; rep < reps; ++rep) {
    Network copy = net.clone_compact();
    KmsOptions opts;
    opts.speculate_k = speculate_k;
    opts.context.jobs = jobs;
    opts.remove_remaining = false;
    bench::Timer wall;
    bench::CpuTimer cpu;
    const KmsStats stats = kms_make_irredundant(copy, opts);
    const double w = wall.seconds();
    const double c = cpu.seconds();
    if (rep == 0) {
      run.stats = stats;
      run.seconds = w;
      run.cpu_seconds = c;
      run.digest = proof::digest_bytes(write_blif_string(copy));
    } else {
      run.seconds = std::min(run.seconds, w);
      run.cpu_seconds = std::min(run.cpu_seconds, c);
    }
  }
  return run;
}

struct Row {
  std::string name;
  std::size_t gates = 0;
  std::size_t iterations = 0;
  std::size_t serial_queries = 0;  ///< committed queries, serial engine
  std::size_t spec_queries = 0;    ///< committed queries, speculative
  std::size_t spec_solves = 0;     ///< speculative (non-committed) solves
  std::size_t cache_hits = 0;
  double serial_seconds = 0.0;
  double spec_seconds = 0.0;
  double serial_cpu_seconds = 0.0;
  double spec_cpu_seconds = 0.0;
  bool digest_match = false;
};

Row measure(const std::string& name, Network net, int reps) {
  decompose_to_simple(net);
  const LoopRun serial = run_loop(net, /*speculate_k=*/1, /*jobs=*/1, reps);
  const LoopRun spec = run_loop(net, /*speculate_k=*/8, /*jobs=*/4, reps);
  Row row;
  row.name = name;
  row.gates = net.count_gates();
  row.iterations = spec.stats.iterations;
  row.serial_queries = serial.stats.sensitization_queries;
  row.spec_queries = spec.stats.sensitization_queries;
  row.spec_solves = spec.stats.spec_solves;
  row.cache_hits = spec.stats.spec_cache_hits;
  row.serial_seconds = serial.seconds;
  row.spec_seconds = spec.seconds;
  row.serial_cpu_seconds = serial.cpu_seconds;
  row.spec_cpu_seconds = spec.cpu_seconds;
  row.digest_match = serial.digest == spec.digest;
  return row;
}

std::vector<std::pair<std::string, Network>> corpus(bool quick) {
  std::vector<std::pair<std::string, Network>> circuits;
  circuits.emplace_back("csa_8_2", carry_skip_adder(8, 2));
  if (quick) return circuits;
  circuits.emplace_back("csa_16_4", carry_skip_adder(16, 4));
  circuits.emplace_back("rca_16", ripple_carry_adder(16));
  for (const SuiteSpec& spec : benchmark_suite())
    circuits.emplace_back(spec.name, build_suite_circuit(spec));
  // The largest example: eight disjoint carry-skip slices side by side,
  // the multi-block shape whose independent critical cones the
  // speculative engine banks verdicts across.
  circuits.emplace_back("csa_8_2_x8",
                        replicate_blocks(carry_skip_adder(8, 2), 8));
  return circuits;
}

int run(const std::string& json_path, bool quick) {
  const int reps = quick ? 1 : kReps;
  std::vector<Row> rows;
  bool mismatch = false;
  bool extra_committed = false;
  for (auto& [name, net] : corpus(quick)) {
    std::fprintf(stderr, "bench_kmsloop: %s\n", name.c_str());
    rows.push_back(measure(name, std::move(net), reps));
    mismatch |= !rows.back().digest_match;
    extra_committed |= rows.back().spec_queries > rows.back().serial_queries;
  }

  std::printf("KMS loop speculation: committed queries, wall and CPU time "
              "(min of %d), serial (k=1,j=1) vs speculative (k=8,j=4)\n",
              reps);
  bench::rule('=', 100);
  std::printf("%-10s %6s %5s %8s %8s %8s %5s %8s %8s %8s %8s %5s\n",
              "circuit", "gates", "iter", "ser-qry", "spec-qry", "spec-slv",
              "hits", "ser[s]", "spec[s]", "serCPU", "specCPU", "match");
  bench::rule('-', 100);
  double sum_serial_s = 0.0, sum_spec_s = 0.0;
  double sum_serial_cpu = 0.0, sum_spec_cpu = 0.0;
  for (const Row& r : rows) {
    sum_serial_s += r.serial_seconds;
    sum_spec_s += r.spec_seconds;
    sum_serial_cpu += r.serial_cpu_seconds;
    sum_spec_cpu += r.spec_cpu_seconds;
    std::printf(
        "%-10s %6zu %5zu %8zu %8zu %8zu %5zu %8.3f %8.3f %8.3f %8.3f %5s\n",
        r.name.c_str(), r.gates, r.iterations, r.serial_queries,
        r.spec_queries, r.spec_solves, r.cache_hits, r.serial_seconds,
        r.spec_seconds, r.serial_cpu_seconds, r.spec_cpu_seconds,
        r.digest_match ? "yes" : "NO");
  }
  bench::rule('-', 100);
  std::printf("suite totals: wall serial %.3fs vs speculative %.3fs, "
              "CPU serial %.3fs vs speculative %.3fs\n",
              sum_serial_s, sum_spec_s, sum_serial_cpu, sum_spec_cpu);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_kmsloop: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(out, "{\n  \"schema\": \"kms-bench-kmsloop-v1\",\n");
    std::fprintf(out, "  \"reps\": %d,\n", reps);
    std::fprintf(out, "  \"serial_seconds\": %.6f,\n", sum_serial_s);
    std::fprintf(out, "  \"speculative_seconds\": %.6f,\n", sum_spec_s);
    std::fprintf(out, "  \"serial_cpu_seconds\": %.6f,\n", sum_serial_cpu);
    std::fprintf(out, "  \"speculative_cpu_seconds\": %.6f,\n", sum_spec_cpu);
    std::fprintf(out, "  \"circuits\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          out,
          "    {\"name\": \"%s\", \"gates\": %zu, \"iterations\": %zu,\n"
          "     \"serial_committed_queries\": %zu, "
          "\"speculative_committed_queries\": %zu,\n"
          "     \"speculative_solves\": %zu, \"cache_hits\": %zu,\n"
          "     \"serial_seconds\": %.6f, \"speculative_seconds\": %.6f,\n"
          "     \"serial_cpu_seconds\": %.6f, "
          "\"speculative_cpu_seconds\": %.6f, \"digest_match\": %s}%s\n",
          r.name.c_str(), r.gates, r.iterations, r.serial_queries,
          r.spec_queries, r.spec_solves, r.cache_hits, r.serial_seconds,
          r.spec_seconds, r.serial_cpu_seconds, r.spec_cpu_seconds,
          r.digest_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

  if (mismatch) {
    std::fprintf(stderr,
                 "bench_kmsloop: FAILED — engines produced different end "
                 "states\n");
    return 2;
  }
  if (extra_committed) {
    std::fprintf(stderr,
                 "bench_kmsloop: FAILED — speculation committed more "
                 "queries than the serial engine\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_kmsloop [--json <path>] [--quick]\n");
      return 1;
    }
  }
  return run(json_path, quick);
}
