// Section VI.2 ablation: duplication grows fanout; under a fanout-load
// delay model the delay of the KMS result can regress — until the
// paper's technological fix (selecting "high"/"super" powered cells) is
// applied. This bench quantifies all three states per circuit:
//
//   delay0    — original circuit, load model, normal drives
//   kms_raw   — after KMS, delays refreshed under the load model
//   kms_sized — after drive resizing against the original fanout profile
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/load_model.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

int main() {
  std::printf(
      "Fanout-load model: KMS delay regression and cell-resizing fix\n");
  bench::rule('=');
  std::printf("%-10s %8s %8s %9s %9s %9s %9s\n", "name", "fanout0",
              "fanout1", "delay0", "kms_raw", "kms_sized", "upsized");
  bench::rule();

  for (auto [bits, block] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {4, 2}, {8, 2}, {8, 4}, {16, 4}}) {
    Network net = carry_skip_adder(bits, block);
    decompose_to_simple(net);
    LoadDelayModel model;
    DriveMap drives;
    apply_load_delays(net, model, drives);
    const auto reference = fanout_profile(net);
    const double delay0 = topological_delay(net);
    const std::size_t fanout0 = net.max_fanout();

    kms_make_irredundant(net, {});
    apply_load_delays(net, model, drives);
    const double kms_raw = topological_delay(net);

    const std::size_t upsized =
        resize_for_fanout(net, model, drives, reference);
    const double kms_sized = topological_delay(net);

    const std::string name =
        "csa " + std::to_string(bits) + "." + std::to_string(block);
    std::printf("%-10s %8zu %8zu %9.2f %9.2f %9.2f %9zu\n", name.c_str(),
                fanout0, net.max_fanout(), delay0, kms_raw, kms_sized,
                upsized);
  }
  bench::rule();
  std::printf(
      "expected shape: kms_sized <= delay0 on every row (the Section\n"
      "VI.2 argument); kms_raw may exceed kms_sized when duplication\n"
      "grew some gate's fanout. In the 2-b adder the paper observes a\n"
      "fanout increase of at most one and no resizing needed.\n");
  return 0;
}
