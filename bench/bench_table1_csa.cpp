// Reproduces the carry-skip-adder half of Table I:
//
//   Name      No. Red.   Gates Initial   Gates Final
//   csa 2.2      2           22             21
//   csa 4.4      2           40             43
//   csa 8.2      8           88             88
//   csa 8.4      4           80             87
//
// plus the accompanying text: "the delay (using a unit gate delay model)
// decreases by 2 gate delays in all the carry-skip circuits" and the
// Section VI.2 remark that fanout grows by at most one.
//
// Absolute gate counts depend on how MIS-II decomposed the MUX/XOR cells,
// so our counts differ from the paper's by a constant factor; the shape —
// redundancy count per block, near-constant area, delay reduction — is
// the reproduction target (see EXPERIMENTS.md).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"

using namespace kms;

int main() {
  struct Row {
    std::size_t bits, block;
  };
  const std::vector<Row> rows = {{2, 2}, {4, 4}, {8, 2}, {8, 4}};

  std::printf("Table I (carry-skip adders), unit gate delay model\n");
  bench::rule('=');
  std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s %9s\n", "name", "red.",
              "gates0", "gates1", "delay0", "delay1", "fanout0", "fanout1",
              "time[s]");
  bench::rule();

  for (const Row& r : rows) {
    Network net = carry_skip_adder(r.bits, r.block);
    decompose_to_simple(net);
    apply_unit_delays(net);
    Network original = net;
    const std::size_t redundancies = count_redundancies(net);

    bench::Timer t;
    const KmsStats s = kms_make_irredundant(net, {});
    const double secs = t.seconds();

    const bool ok = sat_equivalent(original, net) &&
                    count_redundancies(net) == 0;
    const std::string name =
        "csa " + std::to_string(r.bits) + "." + std::to_string(r.block);
    std::printf("%-10s %8zu %8zu %8zu %8.0f %8.0f %8zu %8zu %9.2f%s\n",
                name.c_str(), redundancies, s.initial_gates, s.final_gates,
                s.initial_topo_delay, s.final_topo_delay,
                s.initial_max_fanout, s.final_max_fanout, secs,
                ok ? "" : "  [VERIFY FAILED]");
  }
  bench::rule();
  std::printf(
      "paper: red 2/2/8/4; gates 22->21, 40->43, 88->88, 80->87; delay\n"
      "always -2. Expected shape here: ~2 redundancies per block, final\n"
      "area within a few gates of initial, delay strictly reduced, max\n"
      "fanout growth <= +1.\n");
  return 0;
}
