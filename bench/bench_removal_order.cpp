// Executes the Section VI claim verbatim: once some longest path is
// sensitizable, "the remaining redundancies may be removed in any
// order without increasing the delay of the circuit". After the KMS
// loop (no removal yet), the residual redundancies are removed under
// three different scan orders; every order must land at the same
// computed delay.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sensitize.hpp"

using namespace kms;

namespace {

void report(const std::string& name, Network prepared) {
  const double delay_after_loop =
      computed_delay(prepared, SensitizationMode::kStatic).delay;
  std::printf("%-10s %9.0f", name.c_str(), delay_after_loop);
  for (RemovalOrder order :
       {RemovalOrder::kForward, RemovalOrder::kReverse,
        RemovalOrder::kRandom}) {
    Network net = prepared;
    RedundancyRemovalOptions opts;
    opts.order = order;
    remove_redundancies(net, opts);
    const double d = computed_delay(net, SensitizationMode::kStatic).delay;
    const bool ok = sat_equivalent(prepared, net) &&
                    count_redundancies(net) == 0 &&
                    d <= delay_after_loop + 1e-9;
    std::printf(" %9.0f%s", d, ok ? "" : "!");
  }
  std::printf("\n");
}

Network prepare_csa(std::size_t bits, std::size_t block) {
  Network net = carry_skip_adder(bits, block);
  decompose_to_simple(net);
  apply_unit_delays(net);
  KmsOptions opts;
  opts.remove_remaining = false;  // leave the residual redundancies in
  kms_make_irredundant(net, opts);
  return net;
}

}  // namespace

int main() {
  std::printf(
      "Removal-order invariance after the KMS loop (computed delay)\n");
  bench::rule('=');
  std::printf("%-10s %9s %9s %9s %9s\n", "name", "pre", "forward",
              "reverse", "random");
  bench::rule();
  report("csa 4.2", prepare_csa(4, 2));
  report("csa 8.2", prepare_csa(8, 2));
  report("csa 8.4", prepare_csa(8, 4));
  {
    Network net = build_suite_circuit(suite_spec("smisex2"));
    KmsOptions opts;
    opts.remove_remaining = false;
    kms_make_irredundant(net, opts);
    report("smisex2", std::move(net));
  }
  bench::rule();
  std::printf(
      "expected shape: every order column equals or betters the 'pre'\n"
      "column (a '!' marks a violated invariant — none expected).\n");
  return 0;
}
