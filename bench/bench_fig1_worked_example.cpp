// Reproduces the Section III worked example (Figs. 1-6) numerically:
//
//   * c0 arrives at t=5, other inputs at t=0; AND/OR = 1, XOR/MUX = 2;
//   * critical path of the carry cone: a0 -> gates 1,6,7,9,11,MUX,
//     output after 8 gate delays;
//   * longest path: c0 -> 6,7,9,11,MUX, 11 gate delays, NOT statically
//     sensitizable (needs p0=p1=1 at the ANDs but p0&p1=0 at the MUX);
//   * skip-AND (gate 10) s-a-0 is untestable; under that fault the
//     output needs 11 gate delays -> a "speedtest" would be required;
//   * the KMS result (Fig. 6) is irredundant and no slower.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/inject.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/sim/simulator.hpp"
#include "src/timing/path.hpp"
#include "src/timing/sensitize.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

namespace {

GateId find_gate(const Network& net, const std::string& name) {
  for (std::uint32_t i = 0; i < net.gate_capacity(); ++i)
    if (!net.gate(GateId{i}).dead && net.gate(GateId{i}).name == name)
      return GateId{i};
  return GateId::invalid();
}

void row(const char* what, double measured, double paper) {
  std::printf("%-46s %10.0f %10.0f %6s\n", what, measured, paper,
              measured == paper ? "match" : "DIFF");
}

/// For quantities the paper bounds rather than pins ("equal or less").
void row_le(const char* what, double measured, double paper) {
  std::printf("%-46s %10.0f %10.0f %6s\n", what, measured, paper,
              measured <= paper ? "match" : "DIFF");
}

}  // namespace

int main() {
  AdderOptions opts;
  opts.and_or_delay = 1.0;
  opts.xor_mux_delay = 2.0;
  opts.cin_arrival = 5.0;
  Network adder = carry_skip_adder(2, 2, opts);
  Network cone = extract_output(adder, adder.outputs().size() - 1);
  decompose_to_simple(cone);

  std::printf("Section III worked example (2-b carry-skip carry cone)\n");
  bench::rule('=');
  std::printf("%-46s %10s %10s\n", "quantity", "measured", "paper");
  bench::rule();

  row("longest path length", topological_delay(cone), 11);

  const DelayReport crit = computed_delay(cone, SensitizationMode::kStatic);
  row("critical (sensitizable) path length", crit.delay, 8);

  PathEnumerator en(cone);
  auto longest = en.next();
  Sensitizer stat(cone, SensitizationMode::kStatic);
  Sensitizer viab(cone, SensitizationMode::kViability);
  row("longest path statically sensitizable (0/1)",
      stat.check(*longest).has_value() ? 1 : 0, 0);
  row("longest path viable (0/1)", viab.check(*longest).has_value() ? 1 : 0,
      0);

  const GateId skip = find_gate(cone, "skip0");
  Atpg atpg(cone);
  const Fault sa0{Fault::Site::kStem, skip, ConnId::invalid(), false};
  row("skip-AND s-a-0 testable (0/1)", atpg.is_testable(sa0) ? 1 : 0, 0);
  // Table I: csa 2.2 has exactly two redundancies — "one on the AND
  // gate that feeds the MUX and one within the MUX itself".
  Network full = adder;
  decompose_to_simple(full);
  row("redundant faults in the full 2-b adder",
      static_cast<double>(count_redundancies(full)), 2);

  Network faulty = inject_fault(cone, sa0);  // structure kept intact
  const DelayReport fd = computed_delay(faulty, SensitizationMode::kStatic);
  row("computed delay WITH the fault (speedtest)", fd.delay, 11);

  Network fixed = cone;
  const KmsStats s = kms_make_irredundant(fixed, {});
  row_le("KMS: final computed delay (<= 8)", s.final_computed_delay, 8);
  row("KMS: redundant faults after",
      static_cast<double>(count_redundancies(fixed)), 0);
  row("KMS: still equivalent (0/1)",
      exhaustive_equiv(cone, fixed).equivalent ? 1 : 0, 1);
  row_le("KMS: gate count change (<= 0, 'no area overhead')",
         static_cast<double>(s.final_gates) -
             static_cast<double>(s.initial_gates),
         0);  // Section III: the paper's redesign adds no gates
  bench::rule();
  std::printf("critical path witness: %s\n",
              format_path(cone, *crit.witness).c_str());
  std::printf("longest path (false):  %s\n",
              format_path(cone, *longest).c_str());
  return 0;
}
