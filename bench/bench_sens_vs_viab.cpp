// Ablation for the Section VI discussion: running the KMS loop with the
// static-sensitization condition versus the viability condition. "The
// only penalty for this tradeoff occurs if an unnecessary duplication is
// performed because a path is not statically sensitizable, but is
// viable." We measure duplications, final area, and runtime under both.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/random_logic.hpp"
#include "src/netlist/transform.hpp"

using namespace kms;

namespace {

struct Entry {
  std::string name;
  Network net;
};

void run(const Entry& e) {
  for (const SensitizationMode mode :
       {SensitizationMode::kStatic, SensitizationMode::kViability}) {
    Network net = e.net;
    KmsOptions opts;
    opts.mode = mode;
    bench::Timer t;
    const KmsStats s = kms_make_irredundant(net, opts);
    std::printf("%-12s %-10s %6zu %7zu %8zu %8zu %8.0f %9.2f\n",
                e.name.c_str(),
                mode == SensitizationMode::kStatic ? "static" : "viability",
                s.iterations, s.duplicated_gates, s.initial_gates,
                s.final_gates, s.final_topo_delay, t.seconds());
  }
}

}  // namespace

int main() {
  std::printf("KMS loop condition: static sensitization vs viability\n");
  bench::rule('=');
  std::printf("%-12s %-10s %6s %7s %8s %8s %8s %9s\n", "circuit", "mode",
              "iters", "dups", "gates0", "gates1", "delay1", "time[s]");
  bench::rule();

  std::vector<Entry> entries;
  for (auto [bits, block] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {8, 2}, {8, 4}}) {
    Network net = carry_skip_adder(bits, block);
    decompose_to_simple(net);
    apply_unit_delays(net);
    entries.push_back({"csa " + std::to_string(bits) + "." +
                           std::to_string(block),
                       std::move(net)});
  }
  for (std::uint64_t seed : {11ull, 12ull}) {
    RandomNetworkOptions opts;
    opts.seed = seed;
    opts.gates = 60;
    opts.inputs = 10;
    opts.allow_xor = false;
    Network net = random_network(opts);
    decompose_to_simple(net);
    entries.push_back({"rand" + std::to_string(seed), std::move(net)});
  }
  for (const Entry& e : entries) run(e);
  bench::rule();
  std::printf(
      "expected shape: viability never does MORE duplications than\n"
      "static sensitization (viable paths exit the loop earlier); both\n"
      "reach the same final delay.\n");
  return 0;
}
