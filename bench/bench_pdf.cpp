// Path-delay-fault extension (the paper's closing question): classify
// the K longest paths of each circuit as robustly delay-testable or
// path-delay-fault redundant, before and after the KMS algorithm.
//
// The carry-skip family starts with its longest (ripple) path PDF-
// redundant — the same paths that force the Section III speedtest. The
// KMS result's longest path is sensitizable and, in this family,
// robustly testable: the clock period can be validated by a delay test.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/pdf.hpp"
#include "src/timing/sta.hpp"

using namespace kms;

namespace {

void report(const std::string& name, Network net) {
  decompose_to_simple(net);
  apply_unit_delays(net);
  const std::size_t k = 40;
  const PdfAudit before = pdf_audit(net, k);
  Network fixed = net;
  kms_make_irredundant(fixed, {});
  const PdfAudit after = pdf_audit(fixed, k);
  std::printf("%-10s %8zu %8zu %8.0f | %8zu %8zu %8.0f\n", name.c_str(),
              before.robust_testable, before.untestable,
              topological_delay(net), after.robust_testable,
              after.untestable, topological_delay(fixed));
}

}  // namespace

int main() {
  std::printf(
      "Robust path-delay-fault testability of the 40 longest paths\n");
  bench::rule('=');
  std::printf("%-10s %26s | %26s\n", "", "before KMS", "after KMS");
  std::printf("%-10s %8s %8s %8s | %8s %8s %8s\n", "name", "robust",
              "untest", "Lmax", "robust", "untest", "Lmax");
  bench::rule();
  for (auto [bits, block] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {4, 2}, {8, 2}, {8, 4}})
    report("csa " + std::to_string(bits) + "." + std::to_string(block),
           carry_skip_adder(bits, block));
  report("rca 8", ripple_carry_adder(8));
  report("smisex1", build_suite_circuit(suite_spec("smisex1")));
  report("srd73", build_suite_circuit(suite_spec("srd73")));
  bench::rule();
  std::printf(
      "expected shape: the carry-skip rows start with PDF-redundant\n"
      "longest paths (untest > 0 at the top of the list) and end with a\n"
      "shorter Lmax; the ripple adder is robustly testable throughout.\n");
  return 0;
}
