// Ablation: the paper's motivating comparison. Straightforward
// redundancy removal ([4]/[22]-style, our remove_redundancies) versus
// the KMS algorithm, across the carry-skip adder family. Naive removal
// deletes the skip chain and the true (computed) delay degrades to
// ripple speed; KMS keeps it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/sensitize.hpp"

using namespace kms;

int main() {
  struct Row {
    std::size_t bits, block;
  };
  const std::vector<Row> rows = {{4, 2}, {8, 2}, {8, 4}, {12, 4}, {16, 4}};

  std::printf(
      "Naive redundancy removal vs KMS (computed delay, unit gate "
      "delays)\n");
  bench::rule('=');
  std::printf("%-10s %9s %9s %9s %9s %9s %9s\n", "name", "delay0",
              "naive", "kms", "gates0", "naiveG", "kmsG");
  bench::rule();

  for (const Row& r : rows) {
    Network base = carry_skip_adder(r.bits, r.block);
    decompose_to_simple(base);
    apply_unit_delays(base);
    const double d0 =
        computed_delay(base, SensitizationMode::kStatic).delay;
    const std::size_t g0 = base.count_gates();

    Network naive = base;
    remove_redundancies(naive);
    const double dn =
        computed_delay(naive, SensitizationMode::kStatic).delay;

    Network kms_net = base;
    kms_make_irredundant(kms_net, {});
    const double dk =
        computed_delay(kms_net, SensitizationMode::kStatic).delay;

    const bool ok = sat_equivalent(base, naive) &&
                    sat_equivalent(base, kms_net) &&
                    count_redundancies(naive) == 0 &&
                    count_redundancies(kms_net) == 0;
    const std::string name =
        "csa " + std::to_string(r.bits) + "." + std::to_string(r.block);
    std::printf("%-10s %9.0f %9.0f %9.0f %9zu %9zu %9zu%s\n", name.c_str(),
                d0, dn, dk, g0, naive.count_gates(), kms_net.count_gates(),
                ok ? "" : "  [VERIFY FAILED]");
  }
  bench::rule();
  std::printf(
      "expected shape: kms delay <= original delay on every row; naive\n"
      "delay > original delay once the adder has >= 3 skip blocks (with\n"
      "only 2 blocks the bypass cannot beat plain rippling, so naive\n"
      "removal is harmless there -- csa 4.2 / 8.4 are included to show\n"
      "exactly that boundary); all results fully testable.\n");
  return 0;
}
