// Reproduces the MCNC half of Table I on the substitute suite
// (DESIGN.md §5): nine delay-optimized multi-level circuits, reporting
// the redundancy count and gate count before/after the algorithm.
//
// Paper shape being reproduced:
//   * class 1 — circuits whose longest paths are NOT statically
//     sensitizable yet contain no redundancies (the algorithm need not
//     be applied);
//   * class 2 — circuits whose longest paths ARE sensitizable; their
//     redundancies can be removed in any order with no delay penalty;
//   * area mostly decreases (59->53 ... 317->315 in the paper).
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/cnf/encoder.hpp"
#include "src/core/kms.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/transform.hpp"
#include "src/timing/path.hpp"
#include "src/timing/sensitize.hpp"

using namespace kms;

namespace {

/// Is some longest path statically sensitizable? (The paper's class
/// split for the MCNC rows.)
bool longest_sensitizable(const Network& net) {
  Sensitizer sens(const_cast<const Network&>(net),
                  SensitizationMode::kStatic);
  for (const Path& p : longest_paths(net, 1e-9, 2000))
    if (sens.check(p)) return true;
  return false;
}

}  // namespace

int main() {
  std::printf(
      "Table I (MCNC rows, substitute suite; 's' prefix = synthetic "
      "stand-in)\n");
  bench::rule('=');
  std::printf("%-10s %6s %8s %8s %8s %8s %10s %9s\n", "name", "red.",
              "gates0", "gates1", "delay0", "delay1", "class", "time[s]");
  bench::rule();

  for (const SuiteSpec& spec : benchmark_suite()) {
    Network net = build_suite_circuit(spec, /*delay_optimized=*/true);
    decompose_to_simple(net);
    Network original = net;

    const std::size_t redundancies = count_redundancies(net);
    const bool sens = longest_sensitizable(net);
    // Paper's classes: 1 = longest paths unsensitizable (and, in the
    // paper's data, already irredundant); 2 = longest sensitizable.
    const char* cls = sens ? "2 (sens)" : "1 (false)";

    bench::Timer t;
    const KmsStats s = kms_make_irredundant(net, {});
    const double secs = t.seconds();

    const bool ok =
        sat_equivalent(original, net) && count_redundancies(net) == 0;
    std::printf("%-10s %6zu %8zu %8zu %8.0f %8.0f %10s %9.2f%s\n",
                spec.name.c_str(), redundancies, s.initial_gates,
                s.final_gates, s.initial_topo_delay, s.final_topo_delay,
                cls, secs, ok ? "" : "  [VERIFY FAILED]");
  }
  bench::rule();
  std::printf(
      "paper: 5xp1 1/92->91, clip 2/99->97, duke2 2/317->315, f51m\n"
      "23/164->140, misex1 28/79->55, misex2 1/88->87, rd73 9/91->80,\n"
      "sao2 8/122->114, z4ml 7/59->53. Expected shape: mostly class-2\n"
      "rows, redundancy counts in the same order of magnitude, final\n"
      "area <= initial area, delay never increased.\n");
  return 0;
}
