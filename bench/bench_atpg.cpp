// ATPG substrate throughput: fault counts, fault-simulation drop rate,
// SAT ATPG speed and redundancy identification across the benchmark
// suite — the engine Section VI's "remove remaining redundancies in any
// order" leans on.
//
// Modes:
//   bench_atpg                      audit table (fault counts, drop
//                                   rates, solver throughput)
//   bench_atpg --json <path>        three-way removal-engine comparison
//                                   (seed / incremental / static+
//                                   incremental, the last with the
//                                   SAT-free static untestability
//                                   pre-pass on), written as
//                                   kms-bench-atpg-v2 JSON (schema
//                                   documented in DESIGN.md §11)
//   bench_atpg --json <path> --quick
//                                   same, smallest circuit only (the CI
//                                   bench-smoke stage)
//   bench_atpg --jobs <n>           parallel-removal scaling table:
//                                   worker counts 1,2,4,... up to n on
//                                   each circuit; exits 2 unless every
//                                   thread count reproduces the
//                                   sequential removed count and BLIF
//                                   digest bit-for-bit
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/base/rng.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"

using namespace kms;

namespace {

void audit(const std::string& name, Network net) {
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(1);
  bench::Timer t_sim;
  const auto detected = sim.detect_random(faults, 16, rng);
  const double sim_secs = t_sim.seconds();
  std::size_t dropped = 0;
  for (bool d : detected)
    if (d) ++dropped;

  Atpg atpg(net);
  std::size_t redundant = 0;
  bench::Timer t_sat;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (!atpg.is_testable(faults[i])) ++redundant;
  }
  const double sat_secs = t_sat.seconds();
  const std::size_t sat_calls = faults.size() - dropped;
  std::printf("%-10s %7zu %7zu %7zu %7zu %9.3f %9.3f %10.0f\n",
              name.c_str(), net.count_gates(), faults.size(), dropped,
              redundant, sim_secs, sat_secs,
              sat_calls > 0 ? static_cast<double>(sat_calls) / sat_secs
                            : 0.0);
}

int run_audit_table() {
  std::printf(
      "ATPG engine: random-pattern drop + exact SAT on survivors\n");
  bench::rule('=');
  std::printf("%-10s %7s %7s %7s %7s %9s %9s %10s\n", "circuit", "gates",
              "faults", "dropped", "redund", "sim[s]", "sat[s]",
              "sat/sec");
  bench::rule();

  audit("csa 8.2", carry_skip_adder(8, 2));
  audit("csa 16.4", carry_skip_adder(16, 4));
  audit("rca 16", ripple_carry_adder(16));
  for (const SuiteSpec& spec : benchmark_suite())
    audit(spec.name, build_suite_circuit(spec));
  bench::rule();
  return 0;
}

// ---- seed-vs-incremental comparison (--json) ------------------------------

struct EngineRun {
  RedundancyRemovalResult r;
  double seconds = 0.0;
  unsigned jobs = 1;
  std::uint64_t digest = 0;  ///< FNV-1a of the result's BLIF bytes
};

EngineRun run_engine(const Network& net, bool incremental,
                     unsigned jobs = 1, bool static_prepass = false) {
  Network copy = net.clone_compact();
  RedundancyRemovalOptions opts;
  opts.incremental = incremental;
  opts.static_prepass = static_prepass;
  opts.context.jobs = jobs;
  // The comparison isolates exact-ATPG load: random-pattern pre-drop is
  // off for both engines (it hides the query counts behind stimulus
  // luck — with it on, small circuits sit at the one-UNSAT-per-removal
  // floor for both engines). The incremental engine's witness dropping
  // and cross-pass cache take over the drop role from targeted, not
  // random, stimulus.
  opts.use_fault_sim = false;
  bench::Timer t;
  EngineRun run;
  run.r = remove_redundancies(copy, opts);
  run.seconds = t.seconds();
  run.jobs = jobs;
  run.digest = proof::digest_bytes(write_blif_string(copy));
  return run;
}

void write_engine(std::FILE* out, const char* key, const EngineRun& run) {
  const AtpgStats& a = run.r.atpg;
  std::fprintf(
      out,
      "      \"%s\": {\"removed\": %zu, \"passes\": %zu, "
      "\"sat_queries\": %zu, \"structural_shortcuts\": %zu, "
      "\"static_discharged\": %zu, "
      "\"sim_dropped\": %zu, \"witness_dropped\": %zu, "
      "\"cache_hits\": %zu, \"cache_invalidated\": %zu, "
      "\"unknown_queries\": %zu, \"aborted\": %s, \"jobs\": %u, "
      "\"digest\": \"%016llx\", "
      "\"sat_conflicts\": %llu, \"cone_gates_avg\": %.2f, "
      "\"max_cone_gates\": %llu, \"seconds\": %.6f}",
      key, run.r.removed, run.r.passes, run.r.sat_queries,
      run.r.structural_shortcuts, run.r.static_discharged, run.r.sim_dropped,
      run.r.witness_dropped,
      run.r.cache_hits, run.r.cache_invalidated, run.r.unknown_queries,
      run.r.aborted ? "true" : "false", run.jobs,
      static_cast<unsigned long long>(run.digest),
      static_cast<unsigned long long>(a.sat_conflicts),
      a.sat_solves > 0 ? static_cast<double>(a.cone_gates_encoded) /
                             static_cast<double>(a.sat_solves)
                       : 0.0,
      static_cast<unsigned long long>(a.max_cone_gates), run.seconds);
}

/// Statically redundant blocks: y_i = a_i AND (a_i AND b_i). The
/// direct a_i branch into the outer AND is untestable stuck-at-1 and
/// the static "blocked" rule proves it SAT-free, so the static engine
/// column shows a removal pipeline running at zero SAT queries here —
/// the sharp end of the pre-pass comparison.
Network statred_blocks(std::size_t blocks) {
  Network net("statred_" + std::to_string(blocks));
  for (std::size_t i = 0; i < blocks; ++i) {
    const GateId a = net.add_input("a" + std::to_string(i));
    const GateId b = net.add_input("b" + std::to_string(i));
    const GateId x = net.add_gate(GateKind::kAnd, {a, b}, 1.0);
    const GateId y = net.add_gate(GateKind::kAnd, {a, x}, 1.0);
    net.add_output("y" + std::to_string(i), y);
  }
  return net;
}

int run_json(const std::string& path, bool quick) {
  std::vector<std::pair<std::string, Network>> circuits;
  circuits.emplace_back("csa_8_2", carry_skip_adder(8, 2));
  circuits.emplace_back("statred_8", statred_blocks(8));
  if (!quick) {
    circuits.emplace_back("csa_16_4", carry_skip_adder(16, 4));
    circuits.emplace_back("rca_16", ripple_carry_adder(16));
    for (const SuiteSpec& spec : benchmark_suite())
      circuits.emplace_back(spec.name, build_suite_circuit(spec));
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_atpg: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(out, "{\n  \"schema\": \"kms-bench-atpg-v2\",\n");
  std::fprintf(out, "  \"circuits\": [\n");
  bool failed = false;
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    Network& net = circuits[c].second;
    decompose_to_simple(net);
    const std::size_t gates = net.count_gates();
    const std::size_t faults = collapsed_faults(net).size();
    std::fprintf(stderr, "bench_atpg: %s (%zu gates, %zu faults)\n",
                 circuits[c].first.c_str(), gates, faults);
    const EngineRun seed = run_engine(net, /*incremental=*/false);
    const EngineRun inc = run_engine(net, /*incremental=*/true);
    const EngineRun stat = run_engine(net, /*incremental=*/true, /*jobs=*/1,
                                      /*static_prepass=*/true);
    const bool match = seed.r.removed == inc.r.removed &&
                       inc.r.removed == stat.r.removed &&
                       seed.digest == inc.digest && inc.digest == stat.digest;
    if (!match) failed = true;
    const double ratio =
        static_cast<double>(seed.r.sat_queries) /
        static_cast<double>(inc.r.sat_queries > 0 ? inc.r.sat_queries : 1);
    std::fprintf(out, "    {\"name\": \"%s\", \"gates\": %zu, "
                      "\"faults\": %zu,\n",
                 circuits[c].first.c_str(), gates, faults);
    std::fprintf(out, "     \"engines\": {\n");
    write_engine(out, "seed", seed);
    std::fprintf(out, ",\n");
    write_engine(out, "incremental", inc);
    std::fprintf(out, ",\n");
    write_engine(out, "static", stat);
    std::fprintf(out, "\n     },\n");
    std::fprintf(out, "     \"removed_match\": %s, "
                      "\"sat_query_ratio\": %.3f}%s\n",
                 match ? "true" : "false", ratio,
                 c + 1 < circuits.size() ? "," : "");
    std::fprintf(stderr,
                 "  seed: %zu removed, %zu sat queries, %.3fs | "
                 "incremental: %zu removed, %zu sat queries, %.3fs "
                 "(ratio %.2fx) | static: %zu removed, %zu sat queries "
                 "(%zu discharged), %.3fs%s\n",
                 seed.r.removed, seed.r.sat_queries, seed.seconds,
                 inc.r.removed, inc.r.sat_queries, inc.seconds, ratio,
                 stat.r.removed, stat.r.sat_queries, stat.r.static_discharged,
                 stat.seconds, match ? "" : "  ENGINE MISMATCH");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  if (failed) {
    std::fprintf(stderr,
                 "bench_atpg: FAILED — engines diverged (removed count or "
                 "result digest)\n");
    return 2;
  }
  return 0;
}

// ---- parallel-removal scaling (--jobs) ------------------------------------

int run_scaling(unsigned max_jobs, bool quick) {
  std::vector<std::pair<std::string, Network>> circuits;
  circuits.emplace_back("csa_8_2", carry_skip_adder(8, 2));
  if (!quick) {
    circuits.emplace_back("csa_16_4", carry_skip_adder(16, 4));
    circuits.emplace_back("rca_16", ripple_carry_adder(16));
    for (const SuiteSpec& spec : benchmark_suite())
      circuits.emplace_back(spec.name, build_suite_circuit(spec));
  }
  std::vector<unsigned> job_counts{1};
  for (unsigned j = 2; j < max_jobs; j *= 2) job_counts.push_back(j);
  if (max_jobs > 1) job_counts.push_back(max_jobs);

  std::printf("parallel removal scaling (incremental engine, pre-drop "
              "off)\n");
  bench::rule('=');
  std::printf("%-12s %7s %7s %5s %8s %9s %8s %6s\n", "circuit", "gates",
              "faults", "jobs", "removed", "sec", "speedup", "match");
  bench::rule();
  bool failed = false;
  for (auto& [name, net] : circuits) {
    decompose_to_simple(net);
    const std::size_t gates = net.count_gates();
    const std::size_t faults = collapsed_faults(net).size();
    EngineRun base;
    for (const unsigned jobs : job_counts) {
      const EngineRun run = run_engine(net, /*incremental=*/true, jobs);
      if (jobs == 1) base = run;
      // The whole point of the commit protocol: every worker count
      // reproduces the sequential result bit for bit.
      const bool match =
          run.r.removed == base.r.removed && run.digest == base.digest;
      if (!match) failed = true;
      std::printf("%-12s %7zu %7zu %5u %8zu %9.3f %7.2fx %6s\n",
                  name.c_str(), gates, faults, jobs, run.r.removed,
                  run.seconds,
                  run.seconds > 0 ? base.seconds / run.seconds : 0.0,
                  match ? "yes" : "NO");
    }
  }
  bench::rule();
  if (failed) {
    std::fprintf(stderr,
                 "bench_atpg: FAILED — a parallel run diverged from the "
                 "sequential result\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  long long jobs = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || jobs < 1 || jobs > 1024) {
        std::fprintf(stderr, "bench_atpg: bad --jobs value\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_atpg [--json <path> [--quick]] "
                   "[--jobs <n> [--quick]]\n");
      return 1;
    }
  }
  if (jobs >= 1 && !json_path.empty()) {
    std::fprintf(stderr, "bench_atpg: --jobs and --json are exclusive\n");
    return 1;
  }
  if (jobs >= 1) return run_scaling(static_cast<unsigned>(jobs), quick);
  if (!json_path.empty()) return run_json(json_path, quick);
  return run_audit_table();
}
