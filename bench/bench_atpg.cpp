// ATPG substrate throughput: fault counts, fault-simulation drop rate,
// SAT ATPG speed and redundancy identification across the benchmark
// suite — the engine Section VI's "remove remaining redundancies in any
// order" leans on.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/base/rng.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/transform.hpp"

using namespace kms;

namespace {

void audit(const std::string& name, Network net) {
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(1);
  bench::Timer t_sim;
  const auto detected = sim.detect_random(faults, 16, rng);
  const double sim_secs = t_sim.seconds();
  std::size_t dropped = 0;
  for (bool d : detected)
    if (d) ++dropped;

  Atpg atpg(net);
  std::size_t redundant = 0, aborted = 0;
  bench::Timer t_sat;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (!atpg.is_testable(faults[i])) ++redundant;
  }
  const double sat_secs = t_sat.seconds();
  const std::size_t sat_calls = faults.size() - dropped;
  std::printf("%-10s %7zu %7zu %7zu %7zu %9.3f %9.3f %10.0f\n",
              name.c_str(), net.count_gates(), faults.size(), dropped,
              redundant, sim_secs, sat_secs,
              sat_calls > 0 ? static_cast<double>(sat_calls) / sat_secs
                            : 0.0);
  (void)aborted;
}

}  // namespace

int main() {
  std::printf(
      "ATPG engine: random-pattern drop + exact SAT on survivors\n");
  bench::rule('=');
  std::printf("%-10s %7s %7s %7s %7s %9s %9s %10s\n", "circuit", "gates",
              "faults", "dropped", "redund", "sim[s]", "sat[s]",
              "sat/sec");
  bench::rule();

  audit("csa 8.2", carry_skip_adder(8, 2));
  audit("csa 16.4", carry_skip_adder(16, 4));
  audit("rca 16", ripple_carry_adder(16));
  for (const SuiteSpec& spec : benchmark_suite())
    audit(spec.name, build_suite_circuit(spec));
  bench::rule();
  return 0;
}
