// ATPG substrate throughput: fault counts, fault-simulation drop rate,
// SAT ATPG speed and redundancy identification across the benchmark
// suite — the engine Section VI's "remove remaining redundancies in any
// order" leans on.
//
// Modes:
//   bench_atpg                      audit table (fault counts, drop
//                                   rates, solver throughput)
//   bench_atpg --json <path>        seed-vs-incremental removal-engine
//                                   comparison, written as
//                                   kms-bench-atpg-v1 JSON (schema
//                                   documented in DESIGN.md §11)
//   bench_atpg --json <path> --quick
//                                   same, smallest circuit only (the CI
//                                   bench-smoke stage)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/atpg/atpg.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/atpg/redundancy.hpp"
#include "src/base/rng.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/transform.hpp"

using namespace kms;

namespace {

void audit(const std::string& name, Network net) {
  decompose_to_simple(net);
  const auto faults = collapsed_faults(net);
  FaultSimulator sim(net);
  Rng rng(1);
  bench::Timer t_sim;
  const auto detected = sim.detect_random(faults, 16, rng);
  const double sim_secs = t_sim.seconds();
  std::size_t dropped = 0;
  for (bool d : detected)
    if (d) ++dropped;

  Atpg atpg(net);
  std::size_t redundant = 0;
  bench::Timer t_sat;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (!atpg.is_testable(faults[i])) ++redundant;
  }
  const double sat_secs = t_sat.seconds();
  const std::size_t sat_calls = faults.size() - dropped;
  std::printf("%-10s %7zu %7zu %7zu %7zu %9.3f %9.3f %10.0f\n",
              name.c_str(), net.count_gates(), faults.size(), dropped,
              redundant, sim_secs, sat_secs,
              sat_calls > 0 ? static_cast<double>(sat_calls) / sat_secs
                            : 0.0);
}

int run_audit_table() {
  std::printf(
      "ATPG engine: random-pattern drop + exact SAT on survivors\n");
  bench::rule('=');
  std::printf("%-10s %7s %7s %7s %7s %9s %9s %10s\n", "circuit", "gates",
              "faults", "dropped", "redund", "sim[s]", "sat[s]",
              "sat/sec");
  bench::rule();

  audit("csa 8.2", carry_skip_adder(8, 2));
  audit("csa 16.4", carry_skip_adder(16, 4));
  audit("rca 16", ripple_carry_adder(16));
  for (const SuiteSpec& spec : benchmark_suite())
    audit(spec.name, build_suite_circuit(spec));
  bench::rule();
  return 0;
}

// ---- seed-vs-incremental comparison (--json) ------------------------------

struct EngineRun {
  RedundancyRemovalResult r;
  double seconds = 0.0;
};

EngineRun run_engine(const Network& net, bool incremental) {
  Network copy = net.clone_compact();
  RedundancyRemovalOptions opts;
  opts.incremental = incremental;
  // The comparison isolates exact-ATPG load: random-pattern pre-drop is
  // off for both engines (it hides the query counts behind stimulus
  // luck — with it on, small circuits sit at the one-UNSAT-per-removal
  // floor for both engines). The incremental engine's witness dropping
  // and cross-pass cache take over the drop role from targeted, not
  // random, stimulus.
  opts.use_fault_sim = false;
  bench::Timer t;
  EngineRun run;
  run.r = remove_redundancies(copy, opts);
  run.seconds = t.seconds();
  return run;
}

void write_engine(std::FILE* out, const char* key, const EngineRun& run) {
  const AtpgStats& a = run.r.atpg;
  std::fprintf(
      out,
      "      \"%s\": {\"removed\": %zu, \"passes\": %zu, "
      "\"sat_queries\": %zu, \"structural_shortcuts\": %zu, "
      "\"sim_dropped\": %zu, \"witness_dropped\": %zu, "
      "\"cache_hits\": %zu, \"cache_invalidated\": %zu, "
      "\"unknown_queries\": %zu, \"aborted\": %s, "
      "\"sat_conflicts\": %llu, \"cone_gates_avg\": %.2f, "
      "\"max_cone_gates\": %llu, \"seconds\": %.6f}",
      key, run.r.removed, run.r.passes, run.r.sat_queries,
      run.r.structural_shortcuts, run.r.sim_dropped, run.r.witness_dropped,
      run.r.cache_hits, run.r.cache_invalidated, run.r.unknown_queries,
      run.r.aborted ? "true" : "false",
      static_cast<unsigned long long>(a.sat_conflicts),
      a.sat_solves > 0 ? static_cast<double>(a.cone_gates_encoded) /
                             static_cast<double>(a.sat_solves)
                       : 0.0,
      static_cast<unsigned long long>(a.max_cone_gates), run.seconds);
}

int run_json(const std::string& path, bool quick) {
  std::vector<std::pair<std::string, Network>> circuits;
  circuits.emplace_back("csa_8_2", carry_skip_adder(8, 2));
  if (!quick) {
    circuits.emplace_back("csa_16_4", carry_skip_adder(16, 4));
    circuits.emplace_back("rca_16", ripple_carry_adder(16));
    for (const SuiteSpec& spec : benchmark_suite())
      circuits.emplace_back(spec.name, build_suite_circuit(spec));
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_atpg: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(out, "{\n  \"schema\": \"kms-bench-atpg-v1\",\n");
  std::fprintf(out, "  \"circuits\": [\n");
  bool failed = false;
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    Network& net = circuits[c].second;
    decompose_to_simple(net);
    const std::size_t gates = net.count_gates();
    const std::size_t faults = collapsed_faults(net).size();
    std::fprintf(stderr, "bench_atpg: %s (%zu gates, %zu faults)\n",
                 circuits[c].first.c_str(), gates, faults);
    const EngineRun seed = run_engine(net, /*incremental=*/false);
    const EngineRun inc = run_engine(net, /*incremental=*/true);
    const bool match = seed.r.removed == inc.r.removed;
    if (!match) failed = true;
    const double ratio =
        static_cast<double>(seed.r.sat_queries) /
        static_cast<double>(inc.r.sat_queries > 0 ? inc.r.sat_queries : 1);
    std::fprintf(out, "    {\"name\": \"%s\", \"gates\": %zu, "
                      "\"faults\": %zu,\n",
                 circuits[c].first.c_str(), gates, faults);
    std::fprintf(out, "     \"engines\": {\n");
    write_engine(out, "seed", seed);
    std::fprintf(out, ",\n");
    write_engine(out, "incremental", inc);
    std::fprintf(out, "\n     },\n");
    std::fprintf(out, "     \"removed_match\": %s, "
                      "\"sat_query_ratio\": %.3f}%s\n",
                 match ? "true" : "false", ratio,
                 c + 1 < circuits.size() ? "," : "");
    std::fprintf(stderr,
                 "  seed: %zu removed, %zu sat queries, %.3fs | "
                 "incremental: %zu removed, %zu sat queries, %.3fs "
                 "(ratio %.2fx)%s\n",
                 seed.r.removed, seed.r.sat_queries, seed.seconds,
                 inc.r.removed, inc.r.sat_queries, inc.seconds, ratio,
                 match ? "" : "  REMOVED-COUNT MISMATCH");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  if (failed) {
    std::fprintf(stderr,
                 "bench_atpg: FAILED — engines removed different counts\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_atpg [--json <path> [--quick]]\n");
      return 1;
    }
  }
  if (!json_path.empty()) return run_json(json_path, quick);
  return run_audit_table();
}
