// Incremental-STA repair cost across the KMS loop: how many gate visits
// the dirty-cone repair spends versus the per-iteration full recompute
// it replaces, and what that does to loop wall time.
//
// Modes:
//   bench_timing                  human-readable table
//   bench_timing --json <path>    kms-bench-timing-v1 JSON (schema
//                                 documented in DESIGN.md §15), validated
//                                 by tools/validate_bench_timing.py
//   bench_timing --json <path> --quick
//                                 smallest circuits only (the CI
//                                 bench-smoke stage)
//
// Both engines run the loop phase only (remove_remaining off): the final
// removal phase recomputes nothing per iteration, so including it would
// dilute the loop-cost signal under SAT time. The BLIF digests of the
// two end states must match bit for bit — the engine's contract — and
// the bench exits 2 if they ever do not.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/kms.hpp"
#include "src/gen/adders.hpp"
#include "src/gen/suite.hpp"
#include "src/netlist/blif.hpp"
#include "src/netlist/transform.hpp"
#include "src/proof/journal.hpp"

using namespace kms;

namespace {

struct LoopRun {
  KmsStats stats;
  double seconds = 0.0;
  std::uint64_t digest = 0;  ///< FNV-1a of the end state's BLIF bytes
};

LoopRun run_loop(const Network& net, bool incremental) {
  Network copy = net.clone_compact();
  KmsOptions opts;
  opts.incremental_sta = incremental;
  opts.remove_remaining = false;
  bench::Timer t;
  LoopRun run;
  run.stats = kms_make_irredundant(copy, opts);
  run.seconds = t.seconds();
  run.digest = proof::digest_bytes(write_blif_string(copy));
  return run;
}

struct Row {
  std::string name;
  std::size_t gates = 0;
  std::size_t iterations = 0;
  std::size_t applies = 0;
  std::size_t rebuilds = 0;
  std::uint64_t incremental_visits = 0;
  std::uint64_t full_visits = 0;
  double full_seconds = 0.0;
  double incremental_seconds = 0.0;
  bool digest_match = false;

  double repaired_fraction() const {
    return full_visits > 0 ? static_cast<double>(incremental_visits) /
                                 static_cast<double>(full_visits)
                           : 0.0;
  }
};

Row measure(const std::string& name, Network net) {
  decompose_to_simple(net);
  const LoopRun full = run_loop(net, /*incremental=*/false);
  const LoopRun inc = run_loop(net, /*incremental=*/true);
  Row row;
  row.name = name;
  row.gates = net.count_gates();
  row.iterations = inc.stats.iterations;
  row.applies = inc.stats.sta_applies;
  row.rebuilds = inc.stats.sta_rebuilds;
  row.incremental_visits = inc.stats.sta_gates_repaired;
  row.full_visits = inc.stats.sta_full_visits;
  row.full_seconds = full.seconds;
  row.incremental_seconds = inc.seconds;
  row.digest_match = full.digest == inc.digest;
  return row;
}

std::vector<std::pair<std::string, Network>> corpus(bool quick) {
  std::vector<std::pair<std::string, Network>> circuits;
  circuits.emplace_back("csa_8_2", carry_skip_adder(8, 2));
  if (quick) return circuits;
  circuits.emplace_back("csa_16_4", carry_skip_adder(16, 4));
  circuits.emplace_back("rca_16", ripple_carry_adder(16));
  for (const SuiteSpec& spec : benchmark_suite())
    circuits.emplace_back(spec.name, build_suite_circuit(spec));
  return circuits;
}

int run(const std::string& json_path, bool quick) {
  std::vector<Row> rows;
  bool mismatch = false;
  for (auto& [name, net] : corpus(quick)) {
    std::fprintf(stderr, "bench_timing: %s\n", name.c_str());
    rows.push_back(measure(name, std::move(net)));
    mismatch |= !rows.back().digest_match;
  }

  std::printf("KMS loop timing: incremental dirty-cone repair vs full "
              "recompute per iteration\n");
  bench::rule('=');
  std::printf("%-10s %7s %6s %8s %10s %10s %6s %9s %9s %6s\n", "circuit",
              "gates", "iters", "applies", "inc-visit", "full-visit", "frac",
              "full[s]", "inc[s]", "match");
  bench::rule();
  std::uint64_t sum_inc = 0, sum_full = 0;
  for (const Row& r : rows) {
    sum_inc += r.incremental_visits;
    sum_full += r.full_visits;
    std::printf("%-10s %7zu %6zu %8zu %10llu %10llu %5.2f %9.3f %9.3f %6s\n",
                r.name.c_str(), r.gates, r.iterations, r.applies,
                static_cast<unsigned long long>(r.incremental_visits),
                static_cast<unsigned long long>(r.full_visits),
                r.repaired_fraction(), r.full_seconds, r.incremental_seconds,
                r.digest_match ? "yes" : "NO");
  }
  bench::rule();
  std::printf("suite totals: %llu incremental visits vs %llu full "
              "(fraction %.3f)\n",
              static_cast<unsigned long long>(sum_inc),
              static_cast<unsigned long long>(sum_full),
              sum_full > 0 ? static_cast<double>(sum_inc) /
                                 static_cast<double>(sum_full)
                           : 0.0);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_timing: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(out, "{\n  \"schema\": \"kms-bench-timing-v1\",\n");
    std::fprintf(out, "  \"circuits\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          out,
          "    {\"name\": \"%s\", \"gates\": %zu, \"iterations\": %zu, "
          "\"sta_applies\": %zu, \"sta_rebuilds\": %zu,\n"
          "     \"incremental_gate_visits\": %llu, "
          "\"full_gate_visits\": %llu, \"repaired_fraction\": %.6f,\n"
          "     \"full_seconds\": %.6f, \"incremental_seconds\": %.6f, "
          "\"digest_match\": %s}%s\n",
          r.name.c_str(), r.gates, r.iterations, r.applies, r.rebuilds,
          static_cast<unsigned long long>(r.incremental_visits),
          static_cast<unsigned long long>(r.full_visits),
          r.repaired_fraction(), r.full_seconds, r.incremental_seconds,
          r.digest_match ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

  if (mismatch) {
    std::fprintf(stderr,
                 "bench_timing: FAILED — engines produced different end "
                 "states\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_timing [--json <path>] [--quick]\n");
      return 1;
    }
  }
  return run(json_path, quick);
}
