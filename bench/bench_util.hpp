// Shared helpers for the benchmark/reproduction binaries.
#pragma once

#include <ctime>

#include <chrono>
#include <cstdio>
#include <string>

namespace kms::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU time (all threads). On a throttled or shared host the
/// wall clock is dominated by scheduler noise; CPU seconds measure the
/// work actually done and stay stable run to run.
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}
  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
  double start_;
};

inline void rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace kms::bench
