// Shared helpers for the benchmark/reproduction binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace kms::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace kms::bench
