file(REMOVE_RECURSE
  "libkms_netlist.a"
)
