# Empty compiler generated dependencies file for kms_netlist.
# This may be replaced when dependencies are built.
