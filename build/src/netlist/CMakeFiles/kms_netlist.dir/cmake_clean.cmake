file(REMOVE_RECURSE
  "CMakeFiles/kms_netlist.dir/blif.cpp.o"
  "CMakeFiles/kms_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/kms_netlist.dir/gate.cpp.o"
  "CMakeFiles/kms_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/kms_netlist.dir/network.cpp.o"
  "CMakeFiles/kms_netlist.dir/network.cpp.o.d"
  "CMakeFiles/kms_netlist.dir/transform.cpp.o"
  "CMakeFiles/kms_netlist.dir/transform.cpp.o.d"
  "CMakeFiles/kms_netlist.dir/write_dot.cpp.o"
  "CMakeFiles/kms_netlist.dir/write_dot.cpp.o.d"
  "libkms_netlist.a"
  "libkms_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
