
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/blif.cpp" "src/netlist/CMakeFiles/kms_netlist.dir/blif.cpp.o" "gcc" "src/netlist/CMakeFiles/kms_netlist.dir/blif.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/netlist/CMakeFiles/kms_netlist.dir/gate.cpp.o" "gcc" "src/netlist/CMakeFiles/kms_netlist.dir/gate.cpp.o.d"
  "/root/repo/src/netlist/network.cpp" "src/netlist/CMakeFiles/kms_netlist.dir/network.cpp.o" "gcc" "src/netlist/CMakeFiles/kms_netlist.dir/network.cpp.o.d"
  "/root/repo/src/netlist/transform.cpp" "src/netlist/CMakeFiles/kms_netlist.dir/transform.cpp.o" "gcc" "src/netlist/CMakeFiles/kms_netlist.dir/transform.cpp.o.d"
  "/root/repo/src/netlist/write_dot.cpp" "src/netlist/CMakeFiles/kms_netlist.dir/write_dot.cpp.o" "gcc" "src/netlist/CMakeFiles/kms_netlist.dir/write_dot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kms_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
