file(REMOVE_RECURSE
  "libkms_cnf.a"
)
