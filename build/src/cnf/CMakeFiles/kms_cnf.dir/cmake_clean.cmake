file(REMOVE_RECURSE
  "CMakeFiles/kms_cnf.dir/encoder.cpp.o"
  "CMakeFiles/kms_cnf.dir/encoder.cpp.o.d"
  "libkms_cnf.a"
  "libkms_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
