# Empty compiler generated dependencies file for kms_cnf.
# This may be replaced when dependencies are built.
