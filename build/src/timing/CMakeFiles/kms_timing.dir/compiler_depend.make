# Empty compiler generated dependencies file for kms_timing.
# This may be replaced when dependencies are built.
