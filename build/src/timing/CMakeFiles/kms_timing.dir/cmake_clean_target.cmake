file(REMOVE_RECURSE
  "libkms_timing.a"
)
