file(REMOVE_RECURSE
  "CMakeFiles/kms_timing.dir/load_model.cpp.o"
  "CMakeFiles/kms_timing.dir/load_model.cpp.o.d"
  "CMakeFiles/kms_timing.dir/path.cpp.o"
  "CMakeFiles/kms_timing.dir/path.cpp.o.d"
  "CMakeFiles/kms_timing.dir/pdf.cpp.o"
  "CMakeFiles/kms_timing.dir/pdf.cpp.o.d"
  "CMakeFiles/kms_timing.dir/sensitize.cpp.o"
  "CMakeFiles/kms_timing.dir/sensitize.cpp.o.d"
  "CMakeFiles/kms_timing.dir/sta.cpp.o"
  "CMakeFiles/kms_timing.dir/sta.cpp.o.d"
  "libkms_timing.a"
  "libkms_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
