
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/load_model.cpp" "src/timing/CMakeFiles/kms_timing.dir/load_model.cpp.o" "gcc" "src/timing/CMakeFiles/kms_timing.dir/load_model.cpp.o.d"
  "/root/repo/src/timing/path.cpp" "src/timing/CMakeFiles/kms_timing.dir/path.cpp.o" "gcc" "src/timing/CMakeFiles/kms_timing.dir/path.cpp.o.d"
  "/root/repo/src/timing/pdf.cpp" "src/timing/CMakeFiles/kms_timing.dir/pdf.cpp.o" "gcc" "src/timing/CMakeFiles/kms_timing.dir/pdf.cpp.o.d"
  "/root/repo/src/timing/sensitize.cpp" "src/timing/CMakeFiles/kms_timing.dir/sensitize.cpp.o" "gcc" "src/timing/CMakeFiles/kms_timing.dir/sensitize.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/timing/CMakeFiles/kms_timing.dir/sta.cpp.o" "gcc" "src/timing/CMakeFiles/kms_timing.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/kms_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/kms_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/kms_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kms_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
