# Empty compiler generated dependencies file for kms_sim.
# This may be replaced when dependencies are built.
