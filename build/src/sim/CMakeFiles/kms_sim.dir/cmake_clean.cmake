file(REMOVE_RECURSE
  "CMakeFiles/kms_sim.dir/simulator.cpp.o"
  "CMakeFiles/kms_sim.dir/simulator.cpp.o.d"
  "libkms_sim.a"
  "libkms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
