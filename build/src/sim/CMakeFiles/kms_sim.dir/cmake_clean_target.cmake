file(REMOVE_RECURSE
  "libkms_sim.a"
)
