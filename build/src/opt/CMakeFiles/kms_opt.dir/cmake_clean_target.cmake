file(REMOVE_RECURSE
  "libkms_opt.a"
)
