# Empty dependencies file for kms_opt.
# This may be replaced when dependencies are built.
