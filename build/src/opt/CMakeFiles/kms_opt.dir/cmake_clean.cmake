file(REMOVE_RECURSE
  "CMakeFiles/kms_opt.dir/opt.cpp.o"
  "CMakeFiles/kms_opt.dir/opt.cpp.o.d"
  "libkms_opt.a"
  "libkms_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
