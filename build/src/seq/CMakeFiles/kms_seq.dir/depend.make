# Empty dependencies file for kms_seq.
# This may be replaced when dependencies are built.
