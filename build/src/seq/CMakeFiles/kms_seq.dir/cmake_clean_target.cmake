file(REMOVE_RECURSE
  "libkms_seq.a"
)
