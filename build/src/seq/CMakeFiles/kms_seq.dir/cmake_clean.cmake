file(REMOVE_RECURSE
  "CMakeFiles/kms_seq.dir/seq_network.cpp.o"
  "CMakeFiles/kms_seq.dir/seq_network.cpp.o.d"
  "libkms_seq.a"
  "libkms_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
