# Empty dependencies file for kms_pla.
# This may be replaced when dependencies are built.
