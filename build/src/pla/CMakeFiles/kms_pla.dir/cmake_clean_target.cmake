file(REMOVE_RECURSE
  "libkms_pla.a"
)
