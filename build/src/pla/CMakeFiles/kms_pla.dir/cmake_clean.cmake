file(REMOVE_RECURSE
  "CMakeFiles/kms_pla.dir/pla.cpp.o"
  "CMakeFiles/kms_pla.dir/pla.cpp.o.d"
  "libkms_pla.a"
  "libkms_pla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_pla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
