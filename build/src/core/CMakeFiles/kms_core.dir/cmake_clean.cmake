file(REMOVE_RECURSE
  "CMakeFiles/kms_core.dir/kms.cpp.o"
  "CMakeFiles/kms_core.dir/kms.cpp.o.d"
  "libkms_core.a"
  "libkms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
