file(REMOVE_RECURSE
  "libkms_core.a"
)
