
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/kms.cpp" "src/core/CMakeFiles/kms_core.dir/kms.cpp.o" "gcc" "src/core/CMakeFiles/kms_core.dir/kms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/kms_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/kms_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/kms_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/kms_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/kms_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kms_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
