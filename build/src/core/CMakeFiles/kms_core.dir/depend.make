# Empty dependencies file for kms_core.
# This may be replaced when dependencies are built.
