file(REMOVE_RECURSE
  "libkms_atpg.a"
)
