
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/atpg.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/atpg.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/atpg.cpp.o.d"
  "/root/repo/src/atpg/fault.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/fault.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/fault.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/inject.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/inject.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/inject.cpp.o.d"
  "/root/repo/src/atpg/redundancy.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/redundancy.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/redundancy.cpp.o.d"
  "/root/repo/src/atpg/testgen.cpp" "src/atpg/CMakeFiles/kms_atpg.dir/testgen.cpp.o" "gcc" "src/atpg/CMakeFiles/kms_atpg.dir/testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/kms_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/kms_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/kms_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kms_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
