# Empty dependencies file for kms_atpg.
# This may be replaced when dependencies are built.
