file(REMOVE_RECURSE
  "CMakeFiles/kms_atpg.dir/atpg.cpp.o"
  "CMakeFiles/kms_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/kms_atpg.dir/fault.cpp.o"
  "CMakeFiles/kms_atpg.dir/fault.cpp.o.d"
  "CMakeFiles/kms_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/kms_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/kms_atpg.dir/inject.cpp.o"
  "CMakeFiles/kms_atpg.dir/inject.cpp.o.d"
  "CMakeFiles/kms_atpg.dir/redundancy.cpp.o"
  "CMakeFiles/kms_atpg.dir/redundancy.cpp.o.d"
  "CMakeFiles/kms_atpg.dir/testgen.cpp.o"
  "CMakeFiles/kms_atpg.dir/testgen.cpp.o.d"
  "libkms_atpg.a"
  "libkms_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
