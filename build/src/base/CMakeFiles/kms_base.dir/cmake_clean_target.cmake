file(REMOVE_RECURSE
  "libkms_base.a"
)
