# Empty dependencies file for kms_base.
# This may be replaced when dependencies are built.
