file(REMOVE_RECURSE
  "CMakeFiles/kms_base.dir/log.cpp.o"
  "CMakeFiles/kms_base.dir/log.cpp.o.d"
  "CMakeFiles/kms_base.dir/rng.cpp.o"
  "CMakeFiles/kms_base.dir/rng.cpp.o.d"
  "CMakeFiles/kms_base.dir/strings.cpp.o"
  "CMakeFiles/kms_base.dir/strings.cpp.o.d"
  "libkms_base.a"
  "libkms_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
