file(REMOVE_RECURSE
  "libkms_gen.a"
)
