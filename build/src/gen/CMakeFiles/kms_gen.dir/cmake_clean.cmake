file(REMOVE_RECURSE
  "CMakeFiles/kms_gen.dir/adders.cpp.o"
  "CMakeFiles/kms_gen.dir/adders.cpp.o.d"
  "CMakeFiles/kms_gen.dir/random_logic.cpp.o"
  "CMakeFiles/kms_gen.dir/random_logic.cpp.o.d"
  "CMakeFiles/kms_gen.dir/suite.cpp.o"
  "CMakeFiles/kms_gen.dir/suite.cpp.o.d"
  "libkms_gen.a"
  "libkms_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
