# Empty dependencies file for kms_gen.
# This may be replaced when dependencies are built.
