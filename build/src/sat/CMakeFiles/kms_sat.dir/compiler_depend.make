# Empty compiler generated dependencies file for kms_sat.
# This may be replaced when dependencies are built.
