file(REMOVE_RECURSE
  "libkms_sat.a"
)
