file(REMOVE_RECURSE
  "CMakeFiles/kms_sat.dir/dpll.cpp.o"
  "CMakeFiles/kms_sat.dir/dpll.cpp.o.d"
  "CMakeFiles/kms_sat.dir/solver.cpp.o"
  "CMakeFiles/kms_sat.dir/solver.cpp.o.d"
  "libkms_sat.a"
  "libkms_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
