file(REMOVE_RECURSE
  "CMakeFiles/bench_atpg.dir/bench_atpg.cpp.o"
  "CMakeFiles/bench_atpg.dir/bench_atpg.cpp.o.d"
  "bench_atpg"
  "bench_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
