file(REMOVE_RECURSE
  "CMakeFiles/bench_pdf.dir/bench_pdf.cpp.o"
  "CMakeFiles/bench_pdf.dir/bench_pdf.cpp.o.d"
  "bench_pdf"
  "bench_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
