# Empty dependencies file for bench_pdf.
# This may be replaced when dependencies are built.
