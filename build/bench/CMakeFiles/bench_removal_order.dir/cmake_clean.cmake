file(REMOVE_RECURSE
  "CMakeFiles/bench_removal_order.dir/bench_removal_order.cpp.o"
  "CMakeFiles/bench_removal_order.dir/bench_removal_order.cpp.o.d"
  "bench_removal_order"
  "bench_removal_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_removal_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
