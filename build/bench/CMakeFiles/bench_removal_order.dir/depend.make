# Empty dependencies file for bench_removal_order.
# This may be replaced when dependencies are built.
