# Empty dependencies file for bench_sens_vs_viab.
# This may be replaced when dependencies are built.
