file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_vs_viab.dir/bench_sens_vs_viab.cpp.o"
  "CMakeFiles/bench_sens_vs_viab.dir/bench_sens_vs_viab.cpp.o.d"
  "bench_sens_vs_viab"
  "bench_sens_vs_viab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_vs_viab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
