# Empty dependencies file for bench_table1_csa.
# This may be replaced when dependencies are built.
