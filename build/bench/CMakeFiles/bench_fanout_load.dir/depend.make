# Empty dependencies file for bench_fanout_load.
# This may be replaced when dependencies are built.
