file(REMOVE_RECURSE
  "CMakeFiles/bench_fanout_load.dir/bench_fanout_load.cpp.o"
  "CMakeFiles/bench_fanout_load.dir/bench_fanout_load.cpp.o.d"
  "bench_fanout_load"
  "bench_fanout_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanout_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
