# Empty dependencies file for bench_table1_mcnc.
# This may be replaced when dependencies are built.
