file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mcnc.dir/bench_table1_mcnc.cpp.o"
  "CMakeFiles/bench_table1_mcnc.dir/bench_table1_mcnc.cpp.o.d"
  "bench_table1_mcnc"
  "bench_table1_mcnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mcnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
