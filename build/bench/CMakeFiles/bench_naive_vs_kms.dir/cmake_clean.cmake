file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_vs_kms.dir/bench_naive_vs_kms.cpp.o"
  "CMakeFiles/bench_naive_vs_kms.dir/bench_naive_vs_kms.cpp.o.d"
  "bench_naive_vs_kms"
  "bench_naive_vs_kms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_vs_kms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
