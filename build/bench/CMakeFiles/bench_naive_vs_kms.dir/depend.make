# Empty dependencies file for bench_naive_vs_kms.
# This may be replaced when dependencies are built.
