file(REMOVE_RECURSE
  "CMakeFiles/sat_stress_test.dir/sat_stress_test.cpp.o"
  "CMakeFiles/sat_stress_test.dir/sat_stress_test.cpp.o.d"
  "sat_stress_test"
  "sat_stress_test.pdb"
  "sat_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
