# Empty compiler generated dependencies file for sat_stress_test.
# This may be replaced when dependencies are built.
