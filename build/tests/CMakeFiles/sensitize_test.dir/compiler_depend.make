# Empty compiler generated dependencies file for sensitize_test.
# This may be replaced when dependencies are built.
