file(REMOVE_RECURSE
  "CMakeFiles/sensitize_test.dir/sensitize_test.cpp.o"
  "CMakeFiles/sensitize_test.dir/sensitize_test.cpp.o.d"
  "sensitize_test"
  "sensitize_test.pdb"
  "sensitize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
