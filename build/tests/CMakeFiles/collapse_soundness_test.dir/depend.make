# Empty dependencies file for collapse_soundness_test.
# This may be replaced when dependencies are built.
