file(REMOVE_RECURSE
  "CMakeFiles/collapse_soundness_test.dir/collapse_soundness_test.cpp.o"
  "CMakeFiles/collapse_soundness_test.dir/collapse_soundness_test.cpp.o.d"
  "collapse_soundness_test"
  "collapse_soundness_test.pdb"
  "collapse_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapse_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
