# Empty compiler generated dependencies file for adders_test.
# This may be replaced when dependencies are built.
