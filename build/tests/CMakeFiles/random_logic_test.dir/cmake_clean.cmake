file(REMOVE_RECURSE
  "CMakeFiles/random_logic_test.dir/random_logic_test.cpp.o"
  "CMakeFiles/random_logic_test.dir/random_logic_test.cpp.o.d"
  "random_logic_test"
  "random_logic_test.pdb"
  "random_logic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
