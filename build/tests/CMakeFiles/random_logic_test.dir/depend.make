# Empty dependencies file for random_logic_test.
# This may be replaced when dependencies are built.
