file(REMOVE_RECURSE
  "CMakeFiles/write_dot_test.dir/write_dot_test.cpp.o"
  "CMakeFiles/write_dot_test.dir/write_dot_test.cpp.o.d"
  "write_dot_test"
  "write_dot_test.pdb"
  "write_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
