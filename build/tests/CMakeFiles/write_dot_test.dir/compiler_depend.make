# Empty compiler generated dependencies file for write_dot_test.
# This may be replaced when dependencies are built.
