# Empty dependencies file for kms_test.
# This may be replaced when dependencies are built.
