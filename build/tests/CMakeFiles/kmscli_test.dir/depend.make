# Empty dependencies file for kmscli_test.
# This may be replaced when dependencies are built.
