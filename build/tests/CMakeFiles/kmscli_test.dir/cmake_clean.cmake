file(REMOVE_RECURSE
  "CMakeFiles/kmscli_test.dir/kmscli_test.cpp.o"
  "CMakeFiles/kmscli_test.dir/kmscli_test.cpp.o.d"
  "kmscli_test"
  "kmscli_test.pdb"
  "kmscli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmscli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
