# Empty dependencies file for timing_explorer.
# This may be replaced when dependencies are built.
