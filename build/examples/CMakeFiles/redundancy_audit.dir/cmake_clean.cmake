file(REMOVE_RECURSE
  "CMakeFiles/redundancy_audit.dir/redundancy_audit.cpp.o"
  "CMakeFiles/redundancy_audit.dir/redundancy_audit.cpp.o.d"
  "redundancy_audit"
  "redundancy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
