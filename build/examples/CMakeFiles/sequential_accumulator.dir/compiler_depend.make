# Empty compiler generated dependencies file for sequential_accumulator.
# This may be replaced when dependencies are built.
