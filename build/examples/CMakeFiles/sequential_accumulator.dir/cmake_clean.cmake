file(REMOVE_RECURSE
  "CMakeFiles/sequential_accumulator.dir/sequential_accumulator.cpp.o"
  "CMakeFiles/sequential_accumulator.dir/sequential_accumulator.cpp.o.d"
  "sequential_accumulator"
  "sequential_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
