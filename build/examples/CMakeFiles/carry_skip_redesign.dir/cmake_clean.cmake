file(REMOVE_RECURSE
  "CMakeFiles/carry_skip_redesign.dir/carry_skip_redesign.cpp.o"
  "CMakeFiles/carry_skip_redesign.dir/carry_skip_redesign.cpp.o.d"
  "carry_skip_redesign"
  "carry_skip_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carry_skip_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
