# Empty dependencies file for carry_skip_redesign.
# This may be replaced when dependencies are built.
