# Empty dependencies file for kmscli.
# This may be replaced when dependencies are built.
