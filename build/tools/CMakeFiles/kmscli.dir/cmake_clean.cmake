file(REMOVE_RECURSE
  "CMakeFiles/kmscli.dir/kmscli.cpp.o"
  "CMakeFiles/kmscli.dir/kmscli.cpp.o.d"
  "kmscli"
  "kmscli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmscli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
